"""Differential tests: block-stepped engine vs the per-cycle reference.

The block engine's only correctness claim is *bitwise equality* with the
per-cycle loop under every parameterization — streams, warmup, block
sizes that do and don't divide the cycle count, episode splits, fault
rates, constants under injection.  Hypothesis drives the sweeps so new
engine work keeps being fuzzed against the pinned reference.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.circuit.gates import (
    FANIN_ARITY,
    GateType,
    eval_gate,
    eval_gate_into,
)
from repro.circuit.generate import GeneratorConfig, random_sequential_netlist
from repro.sim.faults import FaultConfig, _FaultInjector, simulate_with_faults
from repro.sim.logicsim import (
    ActivityCounter,
    SimConfig,
    SimPlan,
    Simulator,
    compile_netlist,
    simulate,
)
from repro.sim.workload import PatternSource, Workload, random_workload

from tests.sim._engines import gate_zoo_netlist, zoo_workload


def assert_results_equal(a, b):
    assert np.array_equal(a.logic_prob, b.logic_prob)
    assert np.array_equal(a.tr01_prob, b.tr01_prob)
    assert np.array_equal(a.tr10_prob, b.tr10_prob)
    assert a.cycles == b.cycles and a.streams == b.streams


def assert_fault_results_equal(a, b):
    assert np.array_equal(a.err01, b.err01)
    assert np.array_equal(a.err10, b.err10)
    assert np.array_equal(a.observed0, b.observed0)
    assert np.array_equal(a.observed1, b.observed1)
    assert a.reliability == b.reliability


class TestBlockStimulus:
    def test_next_block_matches_per_cycle_draws(self):
        wl = Workload(np.array([0.2, 0.5, 0.9]), seed=3)
        a = PatternSource(wl, streams=130)
        b = PatternSource(wl, streams=130)
        block = b.next_block(9)
        stacked = np.stack([a.next_cycle() for _ in range(9)])
        assert np.array_equal(block, stacked)

    def test_chunking_is_invisible(self):
        wl = Workload(np.array([0.4, 0.6]), seed=8)
        a = PatternSource(wl, streams=64)
        b = PatternSource(wl, streams=64)
        whole = a.next_block(10)
        parts = np.concatenate(
            [b.next_block(3), b.next_block(1), b.next_block(6)]
        )
        assert np.array_equal(whole, parts)
        # Continuation after differently-chunked prefixes stays in sync.
        assert np.array_equal(a.next_cycle(), b.next_cycle())


class TestGateKernels:
    """eval_gate_into vs eval_gate on every combinational gate kind."""

    CASES = [
        (gt, arity)
        for gt in GateType
        if gt not in (GateType.PI, GateType.DFF)
        for arity in (
            [FANIN_ARITY[gt]] if FANIN_ARITY[gt] is not None else [2, 3, 5]
        )
    ]

    @pytest.mark.parametrize("gate_type,arity", CASES)
    def test_matches_eval_gate(self, gate_type, arity):
        rng = np.random.default_rng(hash((gate_type.value, arity)) % 2**32)
        inputs = rng.integers(0, 2**64, size=(arity, 6, 2), dtype=np.uint64)
        out = np.empty((6, 2), dtype=np.uint64)
        eval_gate_into(gate_type, inputs.copy(), out)
        if gate_type is GateType.CONST0:
            assert not out.any()
        elif gate_type is GateType.CONST1:
            assert (out == np.uint64(0xFFFFFFFFFFFFFFFF)).all()
        else:
            expected = eval_gate(gate_type, list(inputs))
            assert np.array_equal(out, expected)

    def test_wrong_arity_rejected(self):
        out = np.empty((1, 1), dtype=np.uint64)
        one = np.zeros((1, 1, 1), dtype=np.uint64)
        with pytest.raises(ValueError):
            eval_gate_into(GateType.AND, one, out)
        with pytest.raises(ValueError):
            eval_gate_into(GateType.PI, one, out)


class TestFaultFreeDifferential:
    def test_zoo_covers_all_gates_bitwise(self):
        nl = gate_zoo_netlist()
        wl = zoo_workload()
        cfg = SimConfig(cycles=40, streams=128, warmup=3, seed=2)
        ref = simulate(nl, wl, cfg, engine="cycle")
        for bc in (1, 4, 40, None):
            assert_results_equal(
                ref, simulate(nl, wl, cfg, engine="block", block_cycles=bc)
            )

    @settings(max_examples=12, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        streams=st.sampled_from([1, 64, 96, 200]),
        warmup=st.integers(0, 9),
        cycles=st.integers(2, 70),
        block_cycles=st.sampled_from([1, 2, 5, 17, 64]),
        init_state=st.sampled_from(["zero", "random"]),
    )
    def test_property_block_equals_cycle(
        self, seed, streams, warmup, cycles, block_cycles, init_state
    ):
        nl = random_sequential_netlist(
            GeneratorConfig(n_pis=4, n_dffs=3, n_gates=30), seed=seed
        )
        wl = random_workload(nl, seed=seed + 1)
        cfg = SimConfig(
            cycles=cycles,
            streams=streams,
            warmup=warmup,
            seed=seed,
            init_state=init_state,
        )
        ref = simulate(nl, wl, cfg, engine="cycle")
        got = simulate(nl, wl, cfg, engine="block", block_cycles=block_cycles)
        assert_results_equal(ref, got)

    def test_replay_seed_respected(self):
        nl = gate_zoo_netlist()
        cfg = SimConfig(cycles=30, streams=64, seed=0)
        via_workload = simulate(nl, zoo_workload(seed=21), cfg, engine="block")
        via_replay = simulate(
            nl, zoo_workload(seed=4), cfg, replay_seed=21, engine="block"
        )
        assert_results_equal(via_workload, via_replay)


class TestFaultDifferential:
    @settings(max_examples=8, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        cycles=st.integers(2, 90),
        episode_cycles=st.sampled_from([2, 10, 33, 100]),
        warmup=st.integers(0, 6),
        fault_rate=st.sampled_from([0.0, 5e-4, 0.02, 0.3]),
        block_cycles=st.sampled_from([1, 6, 64]),
    )
    def test_property_block_equals_cycle(
        self, seed, cycles, episode_cycles, warmup, fault_rate, block_cycles
    ):
        nl = random_sequential_netlist(
            GeneratorConfig(n_pis=4, n_dffs=3, n_gates=25), seed=seed
        )
        wl = random_workload(nl, seed=seed + 7)
        cfg = SimConfig(cycles=cycles, streams=70, warmup=warmup, seed=seed)
        fc = FaultConfig(
            fault_rate=fault_rate, episode_cycles=episode_cycles, seed=seed + 2
        )
        ref = simulate_with_faults(nl, wl, cfg, fc, engine="cycle")
        got = simulate_with_faults(
            nl, wl, cfg, fc, engine="block", block_cycles=block_cycles
        )
        assert_fault_results_equal(ref, got)

    def test_zoo_constants_under_injection(self):
        """Constant gates must be re-materialized per cycle when a fault
        hook can flip them — the zoo pins that path."""
        nl = gate_zoo_netlist()
        wl = zoo_workload()
        cfg = SimConfig(cycles=50, streams=64, warmup=2, seed=1)
        fc = FaultConfig(fault_rate=0.2, episode_cycles=25, seed=3)
        ref = simulate_with_faults(nl, wl, cfg, fc, engine="cycle")
        got = simulate_with_faults(nl, wl, cfg, fc, engine="block")
        assert_fault_results_equal(ref, got)

    @settings(max_examples=10, deadline=None)
    @given(
        rate=st.floats(0.0, 0.9),
        seed=st.integers(0, 1000),
        words=st.integers(1, 3),
    )
    def test_property_batched_injector_draws_identical(self, rate, seed, words):
        """One C-order (k, m, words) draw consumes the PCG64 stream like k
        successive (m, words) draws — the invariant cached fault labels
        depend on."""
        a = _FaultInjector(rate, words, np.random.default_rng(seed))
        b = _FaultInjector(
            rate, words, np.random.default_rng(seed), batch_draws=True
        )
        nodes = np.arange(23)
        for cycle in range(12):
            assert np.array_equal(a.mask(cycle, nodes), b.mask(cycle, nodes))


class TestActivityCounterBlocks:
    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(0, 1000),
        splits=st.lists(st.integers(1, 7), min_size=1, max_size=5),
    )
    def test_property_observe_block_equals_observe(self, seed, splits):
        rng = np.random.default_rng(seed)
        total = sum(splits)
        history = rng.integers(0, 2**64, size=(total, 9, 2), dtype=np.uint64)
        per_cycle = ActivityCounter(9, 2)
        for values in history:
            per_cycle.observe(values)
        blocked = ActivityCounter(9, 2)
        start = 0
        for span in splits:
            blocked.observe_block(history[start : start + span])
            start += span
        assert np.array_equal(per_cycle.ones, blocked.ones)
        assert np.array_equal(per_cycle.tr01, blocked.tr01)
        assert np.array_equal(per_cycle.tr10, blocked.tr10)
        assert per_cycle.cycles == blocked.cycles
        assert per_cycle.pairs == blocked.pairs

    def test_empty_block_is_noop(self):
        counter = ActivityCounter(3, 1)
        counter.observe_block(np.empty((0, 3, 1), dtype=np.uint64))
        assert counter.cycles == 0 and counter.pairs == 0


class TestRunApi:
    def test_array_source_equals_pattern_source(self):
        nl = gate_zoo_netlist()
        wl = zoo_workload()
        cfg = SimConfig(cycles=20, streams=64, warmup=2, seed=0)
        ref = simulate(nl, wl, cfg, engine="cycle")
        compiled = compile_netlist(nl)
        sim = Simulator(compiled, streams=cfg.streams)
        sim.reset(cfg.init_state, np.random.default_rng(cfg.seed))
        stim = PatternSource(wl, streams=cfg.streams).next_block(
            cfg.warmup + cfg.cycles
        )
        counter = ActivityCounter(compiled.num_nodes, sim.words)
        sim.run(cfg.cycles, stim, counter, warmup=cfg.warmup, block_cycles=6)
        samples = counter.cycles * sim.streams
        pairs = max(counter.pairs, 1) * sim.streams
        assert np.array_equal(ref.logic_prob, counter.ones / samples)
        assert np.array_equal(ref.tr01_prob, counter.tr01 / pairs)

    def test_plan_reuse_across_runs(self):
        nl = gate_zoo_netlist()
        wl = zoo_workload()
        cfg = SimConfig(cycles=25, streams=64, seed=4)
        compiled = compile_netlist(nl)
        plan = SimPlan(compiled, 1)
        results = []
        for _ in range(2):
            sim = Simulator(compiled, streams=cfg.streams)
            sim.reset(cfg.init_state, np.random.default_rng(cfg.seed))
            counter = ActivityCounter(compiled.num_nodes, sim.words)
            sim.run(
                cfg.cycles,
                PatternSource(wl, streams=cfg.streams),
                counter,
                plan=plan,
            )
            results.append(counter.ones.copy())
        assert np.array_equal(results[0], results[1])

    def test_plan_for_wrong_circuit_rejected(self):
        zoo = compile_netlist(gate_zoo_netlist())
        other = compile_netlist(
            random_sequential_netlist(
                GeneratorConfig(n_pis=3, n_dffs=2, n_gates=10), seed=0
            )
        )
        plan = SimPlan(other, 1)
        sim = Simulator(zoo, streams=64)
        with pytest.raises(ValueError, match="different simulator"):
            sim.run_block(np.zeros((1, 3, 1), dtype=np.uint64), plan)

    def test_bad_stimulus_shape_rejected(self):
        sim = Simulator(gate_zoo_netlist(), streams=64)
        sim.reset()
        with pytest.raises(ValueError, match="stimulus array"):
            sim.run(4, np.zeros((4, 99, 1), dtype=np.uint64))

    def test_bad_engine_rejected(self):
        nl = gate_zoo_netlist()
        with pytest.raises(ValueError, match="unknown engine"):
            simulate(nl, zoo_workload(), SimConfig(cycles=4), engine="warp")
        with pytest.raises(ValueError, match="unknown engine"):
            simulate_with_faults(
                nl, zoo_workload(), SimConfig(cycles=4), engine="warp"
            )

    def test_latch_after_run_block_rejected(self):
        """run_block latches internally; committing a stale step() state
        over its values must fail loudly, not corrupt silently."""
        compiled = compile_netlist(gate_zoo_netlist())
        plan = SimPlan(compiled, 1)
        sim = Simulator(compiled, streams=64)
        sim.reset()
        with pytest.raises(RuntimeError, match="without a preceding step"):
            sim.latch()  # fresh simulator: nothing pending
        sim.step(np.zeros((3, 1), dtype=np.uint64), 0)
        sim.run_block(np.zeros((2, 3, 1), dtype=np.uint64), plan)
        with pytest.raises(RuntimeError, match="without a preceding step"):
            sim.latch()  # step()'s pending state was invalidated
        sim.step(np.zeros((3, 1), dtype=np.uint64), 0)
        sim.reset()
        with pytest.raises(RuntimeError, match="without a preceding step"):
            sim.latch()  # reset() also drops pre-reset pending state

    def test_plan_and_block_cycles_conflict_rejected(self):
        compiled = compile_netlist(gate_zoo_netlist())
        sim = Simulator(compiled, streams=64)
        sim.reset()
        plan = SimPlan(compiled, 1)
        stim = np.zeros((4, 3, 1), dtype=np.uint64)
        with pytest.raises(ValueError, match="not both"):
            sim.run(4, stim, plan=plan, block_cycles=2)

    def test_block_cycles_validation_and_memory_cap(self):
        compiled = compile_netlist(gate_zoo_netlist())
        with pytest.raises(ValueError):
            SimPlan(compiled, 1, block_cycles=0)
        tiny = SimPlan(compiled, 1, max_block_bytes=1)
        assert tiny.block_cycles == 1  # capped, never zero
        assert tiny.history.shape[0] == 1
