"""Tests for packed bit-vector utilities (repro.sim.bitvec)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.bitvec import (
    WORD_BITS,
    biased_words,
    pack_bits,
    popcount,
    popcount_int64,
    unpack_bits,
    words_for,
)


class TestWordsFor:
    @pytest.mark.parametrize(
        "streams,expected", [(1, 1), (63, 1), (64, 1), (65, 2), (128, 2), (129, 3)]
    )
    def test_rounding(self, streams, expected):
        assert words_for(streams) == expected

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            words_for(0)


class TestPopcount:
    def test_known_values(self):
        words = np.array([0, 1, 3, 0xFFFFFFFFFFFFFFFF], dtype=np.uint64)
        assert popcount(words) == 0 + 1 + 2 + 64

    def test_axis_reduction(self):
        words = np.array(
            [[1, 3], [0xFF, 0]], dtype=np.uint64
        )
        per_row = popcount(words, axis=1)
        assert per_row.tolist() == [3, 8]

    def test_rejects_wrong_dtype(self):
        with pytest.raises(TypeError):
            popcount(np.zeros(3, dtype=np.int64))

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=2**64 - 1), min_size=1, max_size=16))
    def test_property_matches_python_bin(self, values):
        words = np.array(values, dtype=np.uint64)
        expected = sum(bin(v).count("1") for v in values)
        assert popcount(words) == expected


class TestPopcountInt64:
    """The SWAR popcount must agree with the byte-LUT reference exactly."""

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=2**32))
    def test_property_matches_lut_popcount(self, seed):
        rng = np.random.default_rng(seed)
        words = rng.integers(0, 2**64, size=(5, 4, 3), dtype=np.uint64)
        assert int(popcount_int64(words)) == int(popcount(words))
        for axis in (0, 1, 2):
            got = popcount_int64(words, axis=axis)
            assert got.dtype == np.int64
            assert np.array_equal(got, popcount(words, axis=axis).astype(np.int64))

    def test_extremes(self):
        words = np.array([0, 1, 0xFFFFFFFFFFFFFFFF], dtype=np.uint64)
        assert popcount_int64(words) == 65

    def test_rejects_wrong_dtype(self):
        with pytest.raises(TypeError):
            popcount_int64(np.zeros(3, dtype=np.int64))


class TestPackUnpack:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=2**32))
    def test_roundtrip(self, seed):
        rng = np.random.default_rng(seed)
        bits = rng.integers(0, 2, size=(3, 2, WORD_BITS)).astype(bool)
        packed = pack_bits(bits)
        assert packed.shape == (3, 2)
        assert (unpack_bits(packed) == bits).all()

    def test_bit_order_little(self):
        bits = np.zeros((1, WORD_BITS), dtype=bool)
        bits[0, 0] = True  # lowest stream -> LSB
        assert pack_bits(bits)[0] == 1

    def test_rejects_bad_last_axis(self):
        with pytest.raises(ValueError):
            pack_bits(np.zeros((2, 3), dtype=bool))

    def test_unpack_rejects_wrong_dtype(self):
        with pytest.raises(TypeError):
            unpack_bits(np.zeros(2, dtype=np.uint32))


class TestBiasedWords:
    def test_extreme_probs(self):
        rng = np.random.default_rng(0)
        zeros = biased_words(rng, (4, 2), 0.0)
        ones = biased_words(rng, (4, 2), 1.0)
        assert popcount(zeros) == 0
        assert popcount(ones) == 4 * 2 * WORD_BITS

    def test_density_tracks_probability(self):
        rng = np.random.default_rng(1)
        words = biased_words(rng, (200,), 0.3)
        density = popcount(words) / (200 * WORD_BITS)
        assert density == pytest.approx(0.3, abs=0.02)

    def test_per_position_probabilities(self):
        rng = np.random.default_rng(2)
        probs = np.array([0.1, 0.9])
        words = biased_words(rng, (2, 500), probs[:, None])
        d0 = popcount(words[0]) / (500 * WORD_BITS)
        d1 = popcount(words[1]) / (500 * WORD_BITS)
        assert d0 == pytest.approx(0.1, abs=0.02)
        assert d1 == pytest.approx(0.9, abs=0.02)
