"""Packed multi-circuit engine: golden digests, differentials, cache.

The packed engine (:mod:`repro.sim.pack`) fuses K circuits into one
block-stepped sweep and promises results *bitwise-identical* to K
sequential per-circuit calls — which is what lets packed execution reuse
the label cache without a ``CACHE_VERSION`` bump.  This layer pins that
promise four ways:

* **golden digests** — packed members reproduce the same pinned SHA-256
  stats digests the per-circuit engines are frozen to;
* **differentials** — hypothesis-driven packed-vs-sequential comparison
  across member counts, block sizes, fault rates and heterogeneous
  netlists (gate-zoo + random sequential members);
* **stream alignment** — the packed fault injector bulk-draws each
  member's PCG64 raw stream in chunks; tests force many tiny chunks to
  pin the rewind-to-consumed-position contract, plus direct property
  tests of the raw-stream facts the bulk parse relies on;
* **cache behaviour** — the fingerprint-keyed pack-plan LRU and the
  label cache (packed runs must fully hit a serially-populated cache).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from numpy.random import PCG64, Generator

import repro.sim.pack as pack_mod
from repro.circuit.aig import to_aig
from repro.circuit.generate import GeneratorConfig, random_sequential_netlist
from repro.sim.faults import FaultConfig, simulate_with_faults
from repro.sim.logicsim import SimConfig, compile_netlist, simulate
from repro.sim.pack import (
    MAX_PACK_MEMBERS,
    clear_sim_pack_cache,
    configure_sim_pack_cache,
    pack_circuits,
    sim_pack_cache_info,
    simulate_packed,
    simulate_with_faults_packed,
)
from repro.sim.workload import Workload, random_workload

from tests.sim._engines import gate_zoo_netlist, stats_hash, zoo_workload
from tests.sim.test_engine_golden import CFG, FAULT_CFG, STATS_FAULT, STATS_SIM


@pytest.fixture(autouse=True)
def fresh_pack_cache():
    clear_sim_pack_cache()
    configure_sim_pack_cache(32)
    yield
    clear_sim_pack_cache()
    configure_sim_pack_cache(32)


def random_member(seed: int):
    nl = to_aig(
        random_sequential_netlist(
            GeneratorConfig(n_pis=4, n_dffs=3, n_gates=25), seed=seed
        )
    ).aig
    return nl, random_workload(nl, seed + 1)


def assert_sim_equal(ref, got, label=""):
    assert np.array_equal(ref.logic_prob, got.logic_prob), label
    assert np.array_equal(ref.tr01_prob, got.tr01_prob), label
    assert np.array_equal(ref.tr10_prob, got.tr10_prob), label


def assert_fault_equal(ref, got, label=""):
    assert np.array_equal(ref.err01, got.err01), label
    assert np.array_equal(ref.err10, got.err10), label
    assert np.array_equal(ref.observed0, got.observed0), label
    assert np.array_equal(ref.observed1, got.observed1), label
    assert ref.reliability == got.reliability, label


class TestGoldenDigests:
    """Packed members must land on the *pinned* per-circuit digests."""

    def test_packed_members_reproduce_pinned_sim_stats(self):
        nl = gate_zoo_netlist()
        wl = zoo_workload()
        results = simulate_packed([nl] * 3, [wl] * 3, CFG)
        for k, r in enumerate(results):
            digest = stats_hash([r.logic_prob, r.tr01_prob, r.tr10_prob])
            assert digest == STATS_SIM, f"member {k}"

    def test_packed_members_reproduce_pinned_fault_stats(self):
        nl = gate_zoo_netlist()
        wl = zoo_workload()
        results = simulate_with_faults_packed(
            [nl] * 3, [wl] * 3, CFG, FAULT_CFG
        )
        for k, fr in enumerate(results):
            digest = stats_hash(
                [
                    fr.err01,
                    fr.err10,
                    fr.observed0,
                    fr.observed1,
                    np.float64(fr.reliability),
                ]
            )
            assert digest == STATS_FAULT, f"member {k}"

    def test_single_member_pack_reproduces_pinned_sim_stats(self):
        nl = gate_zoo_netlist()
        (r,) = simulate_packed([nl], [zoo_workload()], CFG)
        assert stats_hash([r.logic_prob, r.tr01_prob, r.tr10_prob]) == STATS_SIM


class TestDifferential:
    """Packed == K sequential calls, bit for bit, under fuzzed shapes."""

    @settings(max_examples=8, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2000),
        k=st.integers(min_value=1, max_value=4),
        block_cycles=st.sampled_from([None, 1, 3, 7, 64]),
    )
    def test_sim_matches_sequential(self, seed, k, block_cycles):
        members = [random_member(seed + 10 * i) for i in range(k)]
        members.append((gate_zoo_netlist(), zoo_workload(seed)))
        cfg = SimConfig(cycles=24, streams=64, warmup=2, seed=seed)
        packed = simulate_packed(
            [nl for nl, _ in members],
            [wl for _, wl in members],
            cfg,
            block_cycles=block_cycles,
            cache=False,
        )
        for i, (nl, wl) in enumerate(members):
            ref = simulate(nl, wl, cfg)
            assert_sim_equal(ref, packed[i], f"member {i}")

    @settings(max_examples=6, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2000),
        k=st.integers(min_value=1, max_value=3),
        fault_rate=st.sampled_from([0.02, 0.002, 5e-6]),
        block_cycles=st.sampled_from([None, 3, 17]),
    )
    def test_fault_matches_sequential(self, seed, k, fault_rate, block_cycles):
        members = [random_member(seed + 10 * i) for i in range(k)]
        members.append((gate_zoo_netlist(), zoo_workload(seed)))
        cfg = SimConfig(cycles=30, streams=64, warmup=2, seed=seed)
        fault = FaultConfig(
            fault_rate=fault_rate, episode_cycles=13, seed=seed + 3
        )
        packed = simulate_with_faults_packed(
            [nl for nl, _ in members],
            [wl for _, wl in members],
            cfg,
            fault,
            block_cycles=block_cycles,
            cache=False,
        )
        for i, (nl, wl) in enumerate(members):
            ref = simulate_with_faults(nl, wl, cfg, fault)
            assert_fault_equal(ref, packed[i], f"member {i}")

    def test_precompiled_and_netlist_members_agree(self):
        nl, wl = random_member(7)
        cfg = SimConfig(cycles=16, streams=64, seed=7)
        from_nl = simulate_packed([nl, nl], [wl, wl], cfg, cache=False)
        compiled = compile_netlist(nl)
        from_cc = simulate_packed(
            [compiled, compiled], [wl, wl], cfg, cache=False
        )
        for a, b in zip(from_nl, from_cc):
            assert_sim_equal(a, b)


class TestInjectorStreamAlignment:
    """The bulk raw-stream parse must leave each member's generator at
    exactly the position the standalone injector would have reached —
    chunk boundaries included (a mid-run over-draw that is not rewound
    desynchronizes every later chunk)."""

    @pytest.mark.parametrize("fault_rate", [0.02, 5e-6])
    def test_many_tiny_chunks_stay_bitwise(self, monkeypatch, fault_rate):
        # Cap the chunk buffer so the injector is forced through many
        # prepare() calls within one run, exercising the rewind path on
        # every boundary.
        monkeypatch.setattr(pack_mod, "_CHUNK_BYTES_CAP", 1 << 12)
        nl = gate_zoo_netlist()
        wl = zoo_workload()
        cfg = SimConfig(cycles=64, streams=64, warmup=2, seed=3)
        fault = FaultConfig(fault_rate=fault_rate, episode_cycles=20, seed=11)
        packed = simulate_with_faults_packed(
            [nl] * 4, [wl] * 4, cfg, fault, cache=False
        )
        ref = simulate_with_faults(nl, wl, cfg, fault)
        for k, got in enumerate(packed):
            assert_fault_equal(ref, got, f"member {k}")

    def test_full_range_integers_split_like_one_call(self):
        bulk = Generator(PCG64(42)).integers(0, 2**64, size=16, dtype=np.uint64)
        g = Generator(PCG64(42))
        split = np.concatenate(
            [
                g.integers(0, 2**64, size=5, dtype=np.uint64),
                g.integers(0, 2**64, size=11, dtype=np.uint64),
            ]
        )
        assert np.array_equal(bulk, split)

    def test_scalar_random_parses_one_raw_word(self):
        raw = Generator(PCG64(43)).integers(0, 2**64, size=3, dtype=np.uint64)
        g = Generator(PCG64(43))
        for u in raw:
            assert g.random() == (int(u) >> 11) * 2.0**-53

    def test_negative_advance_rewinds_stream(self):
        g = Generator(PCG64(44))
        first = g.integers(0, 2**64, size=9, dtype=np.uint64)
        g.bit_generator.advance(-9)
        again = g.integers(0, 2**64, size=9, dtype=np.uint64)
        assert np.array_equal(first, again)


class TestPackErrors:
    def test_empty_pack_raises(self):
        with pytest.raises(ValueError, match="zero circuits"):
            pack_circuits([])

    def test_oversized_pack_raises(self):
        nl = gate_zoo_netlist()
        with pytest.raises(ValueError, match="MAX_PACK_MEMBERS"):
            pack_circuits([nl] * (MAX_PACK_MEMBERS + 1))

    def test_workload_count_mismatch_raises(self):
        nl = gate_zoo_netlist()
        wl = zoo_workload()
        with pytest.raises(ValueError, match="workloads"):
            simulate_packed([nl], [wl, wl], SimConfig(cycles=4))

    def test_workload_pi_mismatch_raises(self):
        nl = gate_zoo_netlist()
        bad = Workload(np.array([0.5, 0.5]), "bad", seed=1)
        with pytest.raises(ValueError, match="PI probabilities"):
            simulate_packed([nl], [bad], SimConfig(cycles=4))

    def test_replay_seeds_length_mismatch_raises(self):
        nl = gate_zoo_netlist()
        wl = zoo_workload()
        with pytest.raises(ValueError, match="replay_seeds"):
            simulate_packed(
                [nl, nl], [wl, wl], SimConfig(cycles=4), replay_seeds=[1]
            )

    def test_cache_maxsize_must_be_positive(self):
        with pytest.raises(ValueError, match="at least one"):
            configure_sim_pack_cache(0)


class TestPackPlanCache:
    def test_repack_hits_cache(self):
        nl = gate_zoo_netlist()
        first = pack_circuits([nl, nl])
        second = pack_circuits([nl, nl])
        assert second is first
        info = sim_pack_cache_info()
        assert info.misses == 1 and info.hits == 1 and info.size == 1

    def test_distinct_compositions_miss_separately(self):
        zoo = gate_zoo_netlist()
        other, _ = random_member(3)
        pack_circuits([zoo, zoo])
        pack_circuits([zoo, other])
        pack_circuits([zoo])
        info = sim_pack_cache_info()
        assert info.misses == 3 and info.size == 3

    def test_eviction_is_lru(self):
        zoo = gate_zoo_netlist()
        other, _ = random_member(3)
        configure_sim_pack_cache(1)
        a = pack_circuits([zoo])
        pack_circuits([other])
        assert sim_pack_cache_info().evictions == 1
        # The first plan was evicted: repacking it misses again.
        b = pack_circuits([zoo])
        assert b is not a
        assert sim_pack_cache_info().misses == 3

    def test_cache_false_bypasses_counters(self):
        nl = gate_zoo_netlist()
        pack_circuits([nl], cache=False)
        pack_circuits([nl], cache=False)
        info = sim_pack_cache_info()
        assert info.hits == 0 and info.misses == 0 and info.size == 0

    def test_clear_resets_counters(self):
        nl = gate_zoo_netlist()
        pack_circuits([nl])
        clear_sim_pack_cache()
        info = sim_pack_cache_info()
        assert info.size == 0 and info.misses == 0 and info.hits == 0


class TestLabelCacheInvariance:
    """Packed execution never changes label keys: a packed factory must
    fully hit a cache populated by serial per-circuit runs."""

    def test_packed_factory_hits_serial_cache(self, tmp_path):
        from repro.data import DataFactory, FactoryConfig

        members = [random_member(40 + 10 * i) for i in range(5)]
        cfg = SimConfig(cycles=12, streams=64, seed=4)
        serial = DataFactory(
            FactoryConfig(workers=0, pack_size=1, cache_dir=tmp_path)
        )
        refs = [serial.simulate(nl, wl, cfg) for nl, wl in members]
        assert serial.stats.misses == len(members)

        packed = DataFactory(
            FactoryConfig(workers=0, pack_size=4, cache_dir=tmp_path)
        )
        got = packed.simulate_many(
            [nl for nl, _ in members], [wl for _, wl in members], cfg
        )
        assert packed.stats.misses == 0
        assert packed.stats.disk_hits == len(members)
        for ref, g in zip(refs, got):
            assert_sim_equal(ref, g)

    def test_serial_reads_packed_populated_cache(self, tmp_path):
        from repro.data import DataFactory, FactoryConfig

        members = [random_member(80 + 10 * i) for i in range(4)]
        cfg = SimConfig(cycles=12, streams=64, seed=4)
        fault = FaultConfig(seed=6)
        packed = DataFactory(
            FactoryConfig(workers=0, pack_size=4, cache_dir=tmp_path)
        )
        refs = packed.simulate_faults_many(
            [nl for nl, _ in members], [wl for _, wl in members], cfg, fault
        )
        serial = DataFactory(
            FactoryConfig(workers=0, pack_size=1, cache_dir=tmp_path)
        )
        for (nl, wl), ref in zip(members, refs):
            got = serial.simulate_faults(nl, wl, cfg, fault)
            assert_fault_equal(ref, got)
        assert serial.stats.misses == 0
        assert serial.stats.disk_hits == len(members)
