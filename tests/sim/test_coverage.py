"""Tests for toggle coverage (repro.sim.coverage)."""

import numpy as np
import pytest

from repro.circuit.benchmarks import large_design
from repro.circuit.library import library_circuit
from repro.sim.coverage import coverage_of_suite, toggle_coverage
from repro.sim.logicsim import SimConfig, simulate
from repro.sim.workload import Workload, random_workload


class TestToggleCoverage:
    def test_free_running_counter_fully_covered(self):
        nl = library_circuit("gray3")
        res = simulate(nl, Workload(np.zeros(0)), SimConfig(cycles=32))
        cov = toggle_coverage(res)
        assert cov.full_coverage == 1.0
        assert cov.untoggled.size == 0

    def test_dead_workload_low_coverage(self):
        nl = large_design("ptc", scale=0.0625)
        res = simulate(
            nl, Workload(np.zeros(len(nl.pis))), SimConfig(cycles=32)
        )
        cov = toggle_coverage(res)
        assert cov.full_coverage < 0.9
        assert cov.untoggled.size > 0

    def test_coverage_monotone_in_activity(self):
        nl = large_design("ptc", scale=0.0625)
        cfg = SimConfig(cycles=48)
        quiet = toggle_coverage(
            simulate(nl, Workload(np.full(len(nl.pis), 0.02)), cfg)
        )
        busy = toggle_coverage(
            simulate(nl, Workload(np.full(len(nl.pis), 0.5)), cfg)
        )
        assert busy.full_coverage >= quiet.full_coverage

    def test_row_renders(self):
        nl = library_circuit("s27")
        res = simulate(nl, random_workload(nl, 1), SimConfig(cycles=32))
        assert "full" in toggle_coverage(res).row()

    def test_rise_and_fall_close_on_long_runs(self):
        nl = library_circuit("s27")
        # Mid-range PI activity: near-parked pins (e.g. p=0.09) can leave
        # fall-only nodes whose lone rise happened during warmup, so the
        # rise~fall symmetry claim needs genuinely toggling stimulus.
        wl = Workload(np.full(len(nl.pis), 0.5), "mid", seed=2)
        res = simulate(nl, wl, SimConfig(cycles=200))
        cov = toggle_coverage(res)
        # Anything that rises eventually falls in a long stationary run.
        assert cov.rise_coverage == pytest.approx(cov.fall_coverage, abs=0.1)


class TestSuiteCoverage:
    def test_union_dominates_members(self):
        nl = large_design("ptc", scale=0.0625)
        cfg = SimConfig(cycles=32)
        results = [
            simulate(nl, random_workload(nl, s), cfg) for s in range(3)
        ]
        merged = coverage_of_suite(results)
        for r in results:
            assert merged.full_coverage >= toggle_coverage(r).full_coverage

    def test_empty_suite_rejected(self):
        with pytest.raises(ValueError):
            coverage_of_suite([])

    def test_empty_netlist_rejected(self):
        """Regression: zero-node results used to yield NaN coverage plus a
        RuntimeWarning instead of a defined outcome."""
        from repro.circuit.netlist import Netlist
        from repro.sim.logicsim import SimResult

        empty = SimResult(
            logic_prob=np.zeros(0),
            tr01_prob=np.zeros(0),
            tr10_prob=np.zeros(0),
            cycles=16,
            streams=64,
            netlist=Netlist("empty"),
        )
        with pytest.raises(ValueError, match="empty netlist"):
            toggle_coverage(empty)
        with pytest.raises(ValueError, match="empty netlist"):
            coverage_of_suite([empty])

    def test_mismatched_netlists_rejected(self):
        a = simulate(
            library_circuit("s27"),
            random_workload(library_circuit("s27"), 0),
            SimConfig(cycles=16),
        )
        b = simulate(
            library_circuit("gray3"),
            Workload(np.zeros(0)),
            SimConfig(cycles=16),
        )
        with pytest.raises(ValueError):
            coverage_of_suite([a, b])


class TestScreeningThresholds:
    """Coverage values at the extremes the sweep screener keys off."""

    def test_constant_stimulus_fails_any_positive_floor(self):
        nl = library_circuit("s27")
        # All PIs parked at 1: after settling, nothing downstream toggles.
        res = simulate(
            nl, Workload(np.ones(len(nl.pis)), "parked"), SimConfig(cycles=64)
        )
        cov = toggle_coverage(res)
        assert cov.full_coverage < 0.5
        assert cov.untoggled.size > 0
        # Dead nodes are reported by id so a screener can blame stimulus.
        assert cov.untoggled.max() < len(nl)

    def test_full_coverage_lower_bounds_directional(self):
        nl = large_design("ptc", scale=0.0625)
        res = simulate(
            nl, random_workload(nl, 3), SimConfig(cycles=48)
        )
        cov = toggle_coverage(res)
        assert cov.full_coverage <= cov.rise_coverage
        assert cov.full_coverage <= cov.fall_coverage
        assert cov.rise_coverage <= cov.value_coverage + 1e-12

    def test_coverage_values_are_fractions(self):
        nl = library_circuit("gray3")
        res = simulate(nl, Workload(np.zeros(0)), SimConfig(cycles=16))
        cov = toggle_coverage(res)
        for v in (
            cov.value_coverage,
            cov.rise_coverage,
            cov.fall_coverage,
            cov.full_coverage,
        ):
            assert 0.0 <= v <= 1.0
