"""Tests for stimulus programs (repro.sim.testbench)."""

import numpy as np
import pytest

from repro.circuit.library import library_circuit
from repro.sim.bitvec import WORD_BITS, popcount
from repro.sim.testbench import Phase, StimulusProgram, workload_from_program


@pytest.fixture()
def nl():
    return library_circuit("updown2")  # PIs: up, en


class TestPhase:
    def test_validation(self):
        with pytest.raises(ValueError):
            Phase("bad", 0)
        with pytest.raises(ValueError):
            Phase("bad", 4, {"x": 1.5})


class TestProgram:
    def test_unknown_pin_rejected(self, nl):
        with pytest.raises(ValueError, match="unknown PIs"):
            StimulusProgram(nl, [Phase("p", 4, {"nope": 1.0})])

    def test_empty_program_rejected(self, nl):
        with pytest.raises(ValueError):
            StimulusProgram(nl, [])

    def test_total_cycles_with_repeat(self, nl):
        prog = StimulusProgram(
            nl, [Phase("a", 3), Phase("b", 5)], repeat=2
        )
        assert prog.total_cycles == 16

    def test_prob_matrix_layout(self, nl):
        prog = StimulusProgram(
            nl,
            [Phase("up_phase", 2, {"up": 1.0}), Phase("down", 3, {"up": 0.0})],
            default_prob=0.25,
        )
        m = prog.prob_matrix()
        assert m.shape == (5, 2)
        up_col = [nl.node_name(p) for p in nl.pis].index("up")
        assert (m[:2, up_col] == 1.0).all()
        assert (m[2:, up_col] == 0.0).all()
        en_col = 1 - up_col
        assert (m[:, en_col] == 0.25).all()

    def test_compiled_pinned_phases_exact(self, nl):
        prog = StimulusProgram(
            nl, [Phase("rst", 3, {"up": 1.0, "en": 0.0})]
        )
        words = prog.compile(streams=64, seed=0)
        up_row = [nl.node_name(p) for p in nl.pis].index("up")
        en_row = 1 - up_row
        assert popcount(words[:, up_row]) == 3 * WORD_BITS
        assert popcount(words[:, en_row]) == 0

    def test_simulate_runs_counter(self, nl):
        """Driving up=1, en=1 deterministically counts: q toggles."""
        prog = StimulusProgram(
            nl, [Phase("run", 40, {"up": 1.0, "en": 1.0})]
        )
        res = prog.simulate(sim_seed=0)
        q0 = nl.node_by_name("q0")
        assert res.logic_prob[q0] == pytest.approx(0.5, abs=0.03)
        assert res.toggle_rate[q0] == pytest.approx(1.0, abs=0.06)

    def test_phases_change_behaviour(self, nl):
        idle = StimulusProgram(nl, [Phase("idle", 40, {"en": 0.0})])
        busy = StimulusProgram(nl, [Phase("busy", 40, {"en": 1.0, "up": 1.0})])
        r_idle = idle.simulate()
        r_busy = busy.simulate()
        q0 = nl.node_by_name("q0")
        assert r_busy.toggle_rate[q0] > r_idle.toggle_rate[q0]


class TestWorkloadFromProgram:
    def test_time_average(self, nl):
        prog = StimulusProgram(
            nl,
            [Phase("hi", 10, {"up": 1.0}), Phase("lo", 30, {"up": 0.0})],
            default_prob=0.5,
        )
        wl = workload_from_program(prog)
        up_ix = [nl.node_name(p) for p in nl.pis].index("up")
        assert wl.pi_probs[up_ix] == pytest.approx(0.25)
        assert wl.pi_probs[1 - up_ix] == pytest.approx(0.5)

    def test_usable_by_models(self, nl):
        from repro.circuit.aig import to_aig
        from repro.circuit.graph import CircuitGraph
        from repro.models.base import ModelConfig
        from repro.models.deepseq import DeepSeq

        prog = StimulusProgram(nl, [Phase("p", 8)])
        mapping = to_aig(nl)
        # PI order is preserved by lowering, so the workload carries over.
        wl = workload_from_program(prog)
        model = DeepSeq(ModelConfig(hidden=8, iterations=2))
        pred = model.predict(CircuitGraph(mapping.aig), wl)
        assert pred.lg.shape == (len(mapping.aig),)
