"""Deep and degenerate topologies through the full compile/execute stack.

Levelize, SimPlan, GraphPlan and the partitioned engine all iterate per
logic level; a 10k-level combinational chain is the adversarial depth
case (10k batches of one node each), and an all-DFF netlist is the
no-combinational-levels edge.  These are cheap in nodes but lethal to
any recursion-based or per-level-allocating implementation.
"""

import numpy as np
import pytest

from repro.circuit.gates import GateType
from repro.circuit.levelize import levelize
from repro.circuit.netlist import Netlist
from repro.memory import MemoryBudget
from repro.sim.logicsim import SimConfig, simulate
from repro.sim.workload import Workload

CHAIN_DEPTH = 10_000


@pytest.fixture(scope="module")
def deep_chain():
    """A NOT-chain CHAIN_DEPTH levels deep, closed by one DFF."""
    nl = Netlist("chain")
    a = nl.add_pi("a")
    ff = nl.add_dff(None, "ff")
    prev = nl.add_gate(GateType.XOR, [a, ff], "g0")
    for k in range(1, CHAIN_DEPTH):
        prev = nl.add_gate(GateType.NOT, [prev], f"g{k}")
    nl.set_fanins(ff, [prev])
    nl.add_po(prev)
    nl.validate()
    return nl


@pytest.fixture(scope="module")
def all_dff():
    """A 5000-DFF rotating register file with no combinational gates."""
    nl = Netlist("dffs")
    pi = nl.add_pi("a")
    ffs = [nl.add_dff(None, f"f{k}") for k in range(5000)]
    nl.set_fanins(ffs[0], [pi])
    for k in range(1, 5000):
        nl.set_fanins(ffs[k], [ffs[k - 1]])
    nl.add_po(ffs[-1])
    nl.validate()
    return nl


class TestLevelize:
    def test_chain_depth(self, deep_chain):
        lev = levelize(deep_chain)
        assert len(lev.comb_forward) == CHAIN_DEPTH

    def test_all_dff_has_no_comb_levels(self, all_dff):
        assert levelize(all_dff).comb_forward == []


class TestSimulation:
    CFG = SimConfig(cycles=8, streams=64, seed=2)

    def test_chain_engines_agree(self, deep_chain):
        wl = Workload(np.array([0.5]), seed=1)
        ref = simulate(deep_chain, wl, self.CFG, engine="cycle")
        blk = simulate(deep_chain, wl, self.CFG, engine="block")
        par = simulate(
            deep_chain, wl, self.CFG, engine="partitioned",
            max_partition_nodes=500,
        )
        bud = simulate(
            deep_chain, wl, self.CFG, engine="block",
            budget=MemoryBudget(plan_bytes=4096, history_bytes=8192),
        )
        for got in (blk, par, bud):
            assert np.array_equal(ref.logic_prob, got.logic_prob)
            assert np.array_equal(ref.tr01_prob, got.tr01_prob)

    def test_chain_semantics(self, deep_chain):
        # At p(a)=0 the chain is pure inversion of the feedback bit: the
        # PO toggles every cycle once the XOR/NOT pipeline settles.
        wl = Workload(np.array([0.0]), seed=1)
        res = simulate(deep_chain, wl, SimConfig(cycles=16, streams=64, warmup=2))
        po = deep_chain.pos[0]
        assert res.toggle_rate[po] == pytest.approx(1.0)

    def test_all_dff_engines_agree(self, all_dff):
        wl = Workload(np.array([0.5]), seed=3)
        ref = simulate(all_dff, wl, self.CFG, engine="cycle")
        blk = simulate(all_dff, wl, self.CFG, engine="block")
        par = simulate(
            all_dff, wl, self.CFG, engine="partitioned", max_partition_nodes=100
        )
        for got in (blk, par):
            assert np.array_equal(ref.logic_prob, got.logic_prob)
            assert np.array_equal(ref.tr01_prob, got.tr01_prob)
            assert np.array_equal(ref.tr10_prob, got.tr10_prob)


class TestGraphPlan:
    def test_deep_chain_plan(self, deep_chain):
        from repro.circuit.aig import to_aig
        from repro.runtime.plan import plan_for

        aig = to_aig(deep_chain).aig
        plan = plan_for(aig, cache=False)
        fwd, rev = plan.schedule()
        assert len(fwd) >= CHAIN_DEPTH
        rows = plan.feature_rows(
            budget=MemoryBudget(plan_bytes=1024)
        )
        # streamed rows match the materialized gathers batch-for-batch
        cached_fwd, _ = plan.feature_rows()
        assert len(rows[0]) == len(cached_fwd)
        for streamed, cached in zip(rows[0], cached_fwd):
            assert np.array_equal(streamed, cached)
