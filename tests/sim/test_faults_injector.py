"""Tests for the fault injector's bit-density machinery."""

import numpy as np
import pytest

from repro.sim.bitvec import WORD_BITS, popcount
from repro.sim.faults import _FaultInjector


class TestInjectorDensity:
    @pytest.mark.parametrize("rate", [0.5, 0.25, 0.1, 1e-2, 1e-3])
    def test_mean_density_matches_rate(self, rate):
        rng = np.random.default_rng(0)
        injector = _FaultInjector(rate, words=4, rng=rng)
        nodes = np.arange(64)
        total_bits = 0
        draws = 300
        for cycle in range(draws):
            mask = injector.mask(cycle, nodes)
            total_bits += popcount(mask)
        density = total_bits / (draws * 64 * 4 * WORD_BITS)
        assert density == pytest.approx(rate, rel=0.25)

    def test_zero_rate_no_flips(self):
        injector = _FaultInjector(0.0, words=2, rng=np.random.default_rng(1))
        mask = injector.mask(0, np.arange(8))
        assert popcount(mask) == 0
        assert mask.shape == (8, 2)

    def test_mask_shape(self):
        injector = _FaultInjector(0.1, words=3, rng=np.random.default_rng(2))
        assert injector.mask(0, np.arange(5)).shape == (5, 3)

    def test_masks_vary_across_calls(self):
        injector = _FaultInjector(0.5, words=1, rng=np.random.default_rng(3))
        a = injector.mask(0, np.arange(4))
        b = injector.mask(1, np.arange(4))
        assert not (a == b).all()

    def test_k_mixing_brackets_rate(self):
        """The AND-of-k-words trick mixes two adjacent densities whose
        expectation equals the requested rate exactly."""
        rate = 3e-3
        injector = _FaultInjector(rate, words=1, rng=np.random.default_rng(4))
        p_lo, p_hi = 2.0**-injector.k_lo, 2.0**-injector.k_hi
        w = injector.w_lo
        assert p_hi <= rate <= p_lo
        assert w * p_lo + (1 - w) * p_hi == pytest.approx(rate)
        assert 0.0 <= w <= 1.0
