"""Golden-hash regression tests freezing the simulation engine's bits.

The per-cycle engine is the reproduction's ground truth: every training
label, power number and reliability number flows from its value traces.
These tests pin SHA-256 digests of (a) the full settled value trace, (b)
the final statistics arrays, (c) the fault-sim label arrays and (d) the
label-cache digests, all computed from the pre-refactor engine on fixed
seeds — then require both engines to reproduce them bit-for-bit.  Any
future engine change that shifts a single bit (and therefore silently
invalidates cached labels without a ``CACHE_VERSION`` bump) fails here.

Digest values assume little-endian IEEE-754/uint64 byte layout (every
supported platform; the CI runners included).
"""

import numpy as np
import pytest

from repro.data.cache import label_key
from repro.memory import MemoryBudget
from repro.sim.faults import FaultConfig, simulate_with_faults
from repro.sim.logicsim import SimConfig, simulate

from tests.sim._engines import (
    block_trace_hash,
    cycle_trace_hash,
    gate_zoo_netlist,
    stats_hash,
    zoo_workload,
)

#: All digests below were produced by the original per-cycle engine at
#: the commit preceding the block-stepped refactor (verified by running
#: the identical computation against that tree).
FINGERPRINT = "0ca35f94ca2af3f4068bb93b258337af4afb223154a25e91985250d77d39d7b8"
TRACE = "3551cfef9eb9861abb5da98026071cc89cf0d928b9653094978af7aa5485079c"
STATS_SIM = "733ed934baa1146b705b2122020b4a888575dea330ac900959bdb89c18595086"
STATS_FAULT = "dffcc7515a45fca2067875c21cc265af13131658a1cf098b281f2bd460155f20"
KEY_SIM = "7428ed62cb44571e4b25c56fca9a69fc2a334a71c9191e99695cc4c3b60c6cf9"
KEY_FAULT = "b80a949a8214db85769d42c5b44201bc82ca4a9a4b4ef781eb8d615961d53311"

CFG = SimConfig(cycles=48, streams=96, warmup=4, seed=5, init_state="random")
FAULT_CFG = FaultConfig(fault_rate=0.02, episode_cycles=20, seed=9)


@pytest.fixture(scope="module")
def zoo():
    return gate_zoo_netlist(), zoo_workload()


class TestValueTrace:
    def test_cycle_engine_trace_pinned(self, zoo):
        nl, wl = zoo
        assert cycle_trace_hash(nl, wl, CFG) == TRACE

    def test_block_engine_reproduces_pinned_trace(self, zoo):
        nl, wl = zoo
        assert block_trace_hash(nl, wl, CFG) == TRACE

    @pytest.mark.parametrize("block_cycles", [1, 3, 7, 52, 64])
    def test_trace_independent_of_block_size(self, zoo, block_cycles):
        nl, wl = zoo
        assert block_trace_hash(nl, wl, CFG, block_cycles) == TRACE

    @pytest.mark.parametrize(
        "budget",
        [
            MemoryBudget(history_bytes=8192),
            MemoryBudget(plan_bytes=2048),
            MemoryBudget(plan_bytes=2048, history_bytes=8192),
        ],
        ids=["history-capped", "streamed-plan", "both"],
    )
    def test_trace_independent_of_memory_budget(self, zoo, budget):
        """Budgets shrink buffers, spill history — never move a bit."""
        nl, wl = zoo
        assert block_trace_hash(nl, wl, CFG, budget=budget) == TRACE


class TestFinalStats:
    def test_netlist_fingerprint_pinned(self, zoo):
        nl, _ = zoo
        assert nl.fingerprint() == FINGERPRINT

    @pytest.mark.parametrize("engine", ["cycle", "block", "partitioned"])
    def test_sim_stats_pinned(self, zoo, engine):
        nl, wl = zoo
        kwargs = {"max_partition_nodes": 6} if engine == "partitioned" else {}
        r = simulate(nl, wl, CFG, engine=engine, **kwargs)
        digest = stats_hash([r.logic_prob, r.tr01_prob, r.tr10_prob])
        assert digest == STATS_SIM

    def test_budgeted_block_stats_pinned(self, zoo):
        nl, wl = zoo
        r = simulate(
            nl, wl, CFG, engine="block",
            budget=MemoryBudget(plan_bytes=2048, history_bytes=8192),
        )
        digest = stats_hash([r.logic_prob, r.tr01_prob, r.tr10_prob])
        assert digest == STATS_SIM

    @pytest.mark.parametrize("engine", ["cycle", "block", "partitioned"])
    def test_fault_stats_pinned(self, zoo, engine):
        nl, wl = zoo
        kwargs = {"max_partition_nodes": 6} if engine == "partitioned" else {}
        fr = simulate_with_faults(nl, wl, CFG, FAULT_CFG, engine=engine, **kwargs)
        digest = stats_hash(
            [
                fr.err01,
                fr.err10,
                fr.observed0,
                fr.observed1,
                np.float64(fr.reliability),
            ]
        )
        assert digest == STATS_FAULT

    def test_budgeted_block_fault_stats_pinned(self, zoo):
        nl, wl = zoo
        fr = simulate_with_faults(
            nl, wl, CFG, FAULT_CFG, engine="block",
            budget=MemoryBudget(plan_bytes=2048, history_bytes=8192),
        )
        digest = stats_hash(
            [
                fr.err01,
                fr.err10,
                fr.observed0,
                fr.observed1,
                np.float64(fr.reliability),
            ]
        )
        assert digest == STATS_FAULT


class TestCacheDigests:
    """The label cache addresses by these digests; they must not move.

    ``label_key`` has no engine input by design — a moved digest here
    means cached labels were orphaned and ``CACHE_VERSION`` discipline
    was violated.
    """

    def test_sim_label_key_pinned(self, zoo):
        nl, wl = zoo
        assert label_key("sim", nl.fingerprint(), wl, CFG) == KEY_SIM

    def test_fault_label_key_pinned(self, zoo):
        nl, wl = zoo
        key = label_key("fault", nl.fingerprint(), wl, CFG, FAULT_CFG)
        assert key == KEY_FAULT

    def test_cached_legacy_labels_valid_for_block_engine(self, zoo):
        """A cache entry written by the old engine must satisfy a block-
        engine consumer bit-for-bit (that is what 'no CACHE_VERSION bump'
        means operationally)."""
        nl, wl = zoo
        legacy = simulate(nl, wl, CFG, engine="cycle")
        block = simulate(nl, wl, CFG, engine="block")
        assert np.array_equal(legacy.logic_prob, block.logic_prob)
        assert np.array_equal(legacy.tr01_prob, block.tr01_prob)
        assert np.array_equal(legacy.tr10_prob, block.tr10_prob)
