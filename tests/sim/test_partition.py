"""Differential tests of the partition-and-stitch engine and memory budgets.

The contract under test is absolute: budgets and partitioning change how
much memory the execution keeps resident, never a single result bit.
Every test here compares against the monolithic engines with
``np.array_equal`` (exact float64 / uint64 equality), not tolerances.
"""

import numpy as np
import pytest

from repro.circuit.generate import GeneratorConfig, random_sequential_netlist
from repro.memory import MemoryBudget
from repro.sim.faults import FaultConfig, simulate_with_faults
from repro.sim.logicsim import SimConfig, SimPlan, Simulator, compile_netlist, simulate
from repro.sim.partition import (
    DEFAULT_PARTITION_NODES,
    PartitionedSimulator,
    simulate_partitioned,
)
from repro.sim.workload import Workload


@pytest.fixture(scope="module")
def circuit():
    return random_sequential_netlist(
        GeneratorConfig(n_pis=8, n_dffs=6, n_gates=300, n_pos=4), seed=21
    )


@pytest.fixture(scope="module")
def workload():
    return Workload(np.full(8, 0.5), seed=17)


CFG = SimConfig(cycles=48, streams=128, warmup=4, seed=3, init_state="random")


def assert_same_sim(a, b):
    assert np.array_equal(a.logic_prob, b.logic_prob)
    assert np.array_equal(a.tr01_prob, b.tr01_prob)
    assert np.array_equal(a.tr10_prob, b.tr10_prob)


class TestMemoryBudget:
    def test_validation(self):
        with pytest.raises(ValueError):
            MemoryBudget(plan_bytes=0)
        with pytest.raises(ValueError):
            MemoryBudget(history_bytes=-1)
        assert MemoryBudget.unlimited().allows_plan(1 << 60)

    def test_cap_count_floors_at_one(self):
        b = MemoryBudget(history_bytes=100)
        assert b.cap_count(1000, want=64) == 1
        assert b.cap_count(10, want=64) == 10
        assert MemoryBudget().cap_count(10, want=64) == 64


class TestStreamedSimPlan:
    def test_streamed_plan_shrinks_resident_bytes(self, circuit):
        compiled = compile_netlist(circuit)
        words = 2
        full = SimPlan(compiled, words)
        tight = SimPlan(
            compiled,
            words,
            budget=MemoryBudget(plan_bytes=4096, history_bytes=20_000),
        )
        assert tight.streamed
        assert tight.resident_bytes() < full.resident_bytes()

    def test_block_budget_bitwise(self, circuit, workload):
        ref = simulate(circuit, workload, CFG, engine="block")
        got = simulate(
            circuit,
            workload,
            CFG,
            engine="block",
            budget=MemoryBudget(plan_bytes=4096, history_bytes=20_000),
        )
        assert_same_sim(ref, got)

    def test_history_only_budget_bitwise(self, circuit, workload):
        ref = simulate(circuit, workload, CFG, engine="cycle")
        got = simulate(
            circuit,
            workload,
            CFG,
            engine="block",
            budget=MemoryBudget(history_bytes=circuit.num_nodes * 2 * 8 * 2),
        )
        assert_same_sim(ref, got)


class TestPartitionedEngine:
    @pytest.mark.parametrize("max_nodes", [16, 64, 10_000])
    def test_fault_free_bitwise(self, circuit, workload, max_nodes):
        ref = simulate(circuit, workload, CFG, engine="cycle")
        got = simulate(
            circuit,
            workload,
            CFG,
            engine="partitioned",
            max_partition_nodes=max_nodes,
        )
        assert_same_sim(ref, got)

    def test_budget_caps_partition_size(self):
        big = random_sequential_netlist(
            GeneratorConfig(n_pis=16, n_dffs=32, n_gates=4000, n_pos=8), seed=4
        )
        tight = PartitionedSimulator(
            big, streams=64, budget=MemoryBudget(plan_bytes=8192)
        )
        free = PartitionedSimulator(big, streams=64)
        assert len(tight.parts) > len(free.parts)
        # The acceptance bar: partitioned execution keeps far less
        # bookkeeping resident than the monolithic block plan's buffers.
        mono = SimPlan(compile_netlist(big), tight.words)
        assert tight.resident_bytes() < mono.resident_bytes()

    def test_faults_bitwise_across_engines(self, circuit, workload):
        fcfg = FaultConfig(fault_rate=0.01, episode_cycles=20, seed=5)
        ref = simulate_with_faults(circuit, workload, CFG, fcfg, engine="cycle")
        blk = simulate_with_faults(circuit, workload, CFG, fcfg, engine="block")
        par = simulate_with_faults(
            circuit, workload, CFG, fcfg, engine="partitioned",
            max_partition_nodes=48,
        )
        for got in (blk, par):
            assert np.array_equal(ref.err01, got.err01)
            assert np.array_equal(ref.err10, got.err10)
            assert np.array_equal(ref.observed0, got.observed0)
            assert np.array_equal(ref.observed1, got.observed1)
            assert ref.reliability == got.reliability

    def test_replay_seed_honoured(self, circuit, workload):
        a = simulate_partitioned(circuit, workload, CFG, replay_seed=99)
        b = simulate(circuit, workload, CFG, engine="cycle", replay_seed=99)
        assert_same_sim(a, b)

    def test_combinational_only_netlist(self):
        from repro.circuit.netlist import Netlist
        from repro.circuit.gates import GateType

        nl = Netlist("comb")
        a = nl.add_pi("a")
        b = nl.add_pi("b")
        x = nl.add_gate(GateType.XOR, [a, b], "x")
        nl.add_po(x)
        nl.validate()
        wl = Workload(np.array([0.5, 0.5]), seed=1)
        cfg = SimConfig(cycles=32, streams=64)
        assert_same_sim(
            simulate(nl, wl, cfg, engine="cycle"),
            simulate(nl, wl, cfg, engine="partitioned", max_partition_nodes=1),
        )

    def test_default_partition_constant(self):
        assert DEFAULT_PARTITION_NODES >= 1
