"""Tests for the VCD waveform writer (repro.sim.vcd)."""

import numpy as np
import pytest

from repro.circuit.library import library_circuit
from repro.sim.vcd import VcdTracer, _identifier, trace_simulation
from repro.sim.workload import Workload, random_workload


class TestIdentifier:
    def test_unique_and_printable(self):
        ids = [_identifier(k) for k in range(500)]
        assert len(set(ids)) == 500
        for i in ids:
            assert all(33 <= ord(c) <= 126 for c in i)

    def test_compact(self):
        assert len(_identifier(0)) == 1
        assert len(_identifier(93)) == 1
        assert len(_identifier(94)) == 2


class TestTracer:
    @pytest.fixture()
    def traced(self):
        nl = library_circuit("gray3")
        tracer = trace_simulation(
            nl, Workload(np.zeros(0), "none"), cycles=9, seed=0
        )
        return nl, tracer

    def test_cycle_count(self, traced):
        _, tracer = traced
        assert tracer.cycles == 9

    def test_header_declares_all_signals(self, traced):
        nl, tracer = traced
        text = tracer.dumps()
        assert "$timescale 1 ns $end" in text
        assert f"$scope module {nl.name} $end" in text
        for node in nl.nodes():
            assert f" {nl.node_name(node)} $end" in text

    def test_timestamps_monotone(self, traced):
        _, tracer = traced
        stamps = [
            int(line[1:])
            for line in tracer.dumps().splitlines()
            if line.startswith("#")
        ]
        assert stamps == sorted(stamps)
        assert stamps[0] == 0
        assert stamps[-1] == 9

    def test_gray_counter_changes_every_cycle(self, traced):
        nl, tracer = traced
        text = tracer.dumps()
        body = text.split("$enddefinitions $end")[1]
        # A gray counter flips exactly one output bit per cycle, so every
        # cycle 1..8 must appear as a timestamp with changes.
        for t in range(1, 9):
            assert f"#{t}" in body

    def test_empty_trace_rejected(self):
        nl = library_circuit("gray3")
        with pytest.raises(ValueError):
            VcdTracer(nl).dumps()

    def test_dumpvars_initial_value_block(self, traced):
        """Cycle 0 must arrive as a $dumpvars section declaring every
        signal's initial value, so strict viewers render cycle 0."""
        nl, tracer = traced
        lines = tracer.dumps().splitlines()
        start = lines.index("#0")
        assert lines[start + 1] == "$dumpvars"
        end = lines.index("$end", start)
        values = lines[start + 2 : end]
        # one initial value per declared signal, each a 0/1 plus an id
        assert len(values) == len(tracer.nodes)
        assert all(v[0] in "01" for v in values)

    def test_out_of_range_stream_rejected(self):
        nl = library_circuit("gray3")
        tracer = VcdTracer(nl, stream=64)  # one word = streams 0..63
        values = np.zeros((len(nl), 1), dtype=np.uint64)
        with pytest.raises(ValueError, match="out of range"):
            tracer.observe(values)

    def test_in_range_high_stream_reads_correct_word(self):
        nl = library_circuit("gray3")
        tracer = VcdTracer(nl, nodes=[0], stream=65)
        values = np.zeros((len(nl), 2), dtype=np.uint64)
        values[0, 1] = np.uint64(2)  # bit 1 of word 1 == stream 65
        tracer.observe(values)
        assert tracer._history[0][0] == 1

    def test_negative_stream_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            VcdTracer(library_circuit("gray3"), stream=-1)

    def test_subset_of_nodes(self):
        nl = library_circuit("gray3")
        keep = [nl.node_by_name("g0")]
        tracer = trace_simulation(
            nl, Workload(np.zeros(0)), cycles=4, nodes=keep
        )
        text = tracer.dumps()
        assert " g0 $end" in text
        assert " g1 $end" not in text

    def test_dump_to_file(self, tmp_path):
        nl = library_circuit("s27")
        tracer = trace_simulation(nl, random_workload(nl, 1), cycles=5)
        path = tmp_path / "wave.vcd"
        tracer.dump(path)
        assert path.read_text().startswith("$date")
