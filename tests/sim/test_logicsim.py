"""Tests for the sequential logic simulator (repro.sim.logicsim)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.circuit.gates import GateType
from repro.circuit.generate import GeneratorConfig, random_sequential_netlist
from repro.circuit.netlist import Netlist
from repro.sim.logicsim import (
    SimConfig,
    Simulator,
    compile_netlist,
    simulate,
)
from repro.sim.workload import Workload


def toggle_ff() -> Netlist:
    """A free-running toggle flip-flop (period 2)."""
    nl = Netlist("toggle")
    ff = nl.add_dff(None, "ff")
    inv = nl.add_gate(GateType.NOT, [ff], "inv")
    nl.set_fanins(ff, [inv])
    nl.add_po(ff)
    nl.validate()
    return nl


def two_bit_counter() -> Netlist:
    nl = Netlist("cnt2")
    b0 = nl.add_dff(None, "b0")
    b1 = nl.add_dff(None, "b1")
    n0 = nl.add_gate(GateType.NOT, [b0], "n0")
    x1 = nl.add_gate(GateType.AND, [b0, b1], "carry_and")  # unused but real
    # b1' = b1 XOR b0 built from AIG gates:
    nb1 = nl.add_gate(GateType.NOT, [b1], "nb1")
    t1 = nl.add_gate(GateType.AND, [b0, nb1], "t1")
    t2 = nl.add_gate(GateType.AND, [n0, b1], "t2")
    nt1 = nl.add_gate(GateType.NOT, [t1], "nt1")
    nt2 = nl.add_gate(GateType.NOT, [t2], "nt2")
    both = nl.add_gate(GateType.AND, [nt1, nt2], "nor")
    x = nl.add_gate(GateType.NOT, [both], "xor")
    nl.set_fanins(b0, [n0])
    nl.set_fanins(b1, [x])
    nl.add_po(b1)
    nl.validate()
    return nl


class TestCompile:
    def test_ops_cover_comb_gates(self):
        nl = two_bit_counter()
        compiled = compile_netlist(nl)
        covered = sorted(
            int(n) for op in compiled.ops for n in op.nodes
        )
        comb = [
            i
            for i in nl.nodes()
            if nl.gate_type(i) not in (GateType.PI, GateType.DFF)
        ]
        assert covered == sorted(comb)

    def test_ops_in_level_order(self):
        nl = two_bit_counter()
        from repro.circuit.levelize import levelize

        lv = levelize(nl)
        compiled = compile_netlist(nl)
        last_level = 0
        for op in compiled.ops:
            level = int(lv.level[op.nodes[0]])
            assert level >= last_level
            last_level = level


class TestKnownSequences:
    def test_toggle_ff_period_two(self):
        nl = toggle_ff()
        sim = Simulator(nl, streams=64)
        sim.reset()
        ff = nl.node_by_name("ff")
        seen = []
        empty = np.zeros((0, 1), dtype=np.uint64)
        for c in range(6):
            vals = sim.step(empty, c)
            seen.append(int(vals[ff, 0] & np.uint64(1)))
            sim.latch()
        assert seen == [0, 1, 0, 1, 0, 1]

    def test_counter_period_four(self):
        nl = two_bit_counter()
        sim = Simulator(nl, streams=64)
        sim.reset()
        b0, b1 = nl.node_by_name("b0"), nl.node_by_name("b1")
        values = []
        empty = np.zeros((0, 1), dtype=np.uint64)
        for c in range(8):
            vals = sim.step(empty, c)
            values.append(
                int(vals[b0, 0] & np.uint64(1)) + 2 * int(vals[b1, 0] & np.uint64(1))
            )
            sim.latch()
        assert values == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_toggle_statistics(self):
        nl = toggle_ff()
        wl = Workload(np.zeros(0), "none")
        res = simulate(nl, wl, SimConfig(cycles=100, streams=64, warmup=2))
        ff = nl.node_by_name("ff")
        assert res.logic_prob[ff] == pytest.approx(0.5, abs=0.01)
        assert res.tr01_prob[ff] == pytest.approx(0.5, abs=0.01)
        assert res.tr10_prob[ff] == pytest.approx(0.5, abs=0.01)


class TestStatistics:
    def test_pi_logic_prob_matches_workload(self):
        nl = Netlist("pis")
        a = nl.add_pi("a")
        b = nl.add_pi("b")
        g = nl.add_gate(GateType.AND, [a, b], "g")
        nl.add_po(g)
        wl = Workload(np.array([0.3, 0.7]), seed=4)
        res = simulate(nl, wl, SimConfig(cycles=400, streams=64, seed=4))
        assert res.logic_prob[a] == pytest.approx(0.3, abs=0.02)
        assert res.logic_prob[b] == pytest.approx(0.7, abs=0.02)
        # independent inputs: AND prob = product
        assert res.logic_prob[g] == pytest.approx(0.21, abs=0.02)

    def test_transition_probs_of_independent_pi(self):
        nl = Netlist("pi")
        a = nl.add_pi("a")
        n = nl.add_gate(GateType.NOT, [a], "n")
        nl.add_po(n)
        p = 0.25
        wl = Workload(np.array([p]), seed=1)
        res = simulate(nl, wl, SimConfig(cycles=500, streams=64, seed=1))
        assert res.tr01_prob[a] == pytest.approx((1 - p) * p, abs=0.01)
        assert res.tr10_prob[a] == pytest.approx(p * (1 - p), abs=0.01)

    def test_transition_vector_shape(self):
        nl = toggle_ff()
        res = simulate(nl, Workload(np.zeros(0)), SimConfig(cycles=20))
        assert res.transition_prob.shape == (len(nl), 2)
        assert (res.toggle_rate >= 0).all()
        assert res.idle_fraction() <= 1.0

    def test_probability_bounds(self):
        nl = random_sequential_netlist(
            GeneratorConfig(n_pis=5, n_dffs=4, n_gates=40), seed=2
        )
        wl = Workload(np.linspace(0.1, 0.9, 5), seed=2)
        res = simulate(nl, wl, SimConfig(cycles=50))
        for arr in (res.logic_prob, res.tr01_prob, res.tr10_prob):
            assert (arr >= 0).all() and (arr <= 1).all()

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=1000))
    def test_property_rising_equals_falling_long_run(self, seed):
        """In a stationary run, #rising and #falling transitions per node
        differ by at most 1 per stream."""
        nl = random_sequential_netlist(
            GeneratorConfig(n_pis=4, n_dffs=3, n_gates=20), seed=seed
        )
        wl = Workload(np.full(4, 0.5), seed=seed)
        cfg = SimConfig(cycles=64, streams=64, seed=seed)
        res = simulate(nl, wl, cfg)
        pairs = (cfg.cycles - 1) * 64
        max_gap = 64 / pairs  # one unmatched edge per stream
        gap = np.abs(res.tr01_prob - res.tr10_prob)
        assert (gap <= max_gap + 1e-9).all()


class TestConfig:
    def test_rejects_bad_cycles(self):
        with pytest.raises(ValueError):
            SimConfig(cycles=1)
        with pytest.raises(ValueError):
            SimConfig(warmup=-1)

    def test_reset_randomizes_state(self):
        nl = toggle_ff()
        sim = Simulator(nl, streams=64)
        sim.reset("random", np.random.default_rng(1))
        ff = nl.node_by_name("ff")
        word = sim.values[ff, 0]
        assert word != 0 and word != np.uint64(0xFFFFFFFFFFFFFFFF)
        with pytest.raises(ValueError):
            sim.reset("warm")

    def test_deterministic_runs(self):
        nl = random_sequential_netlist(
            GeneratorConfig(n_pis=4, n_dffs=3, n_gates=25), seed=6
        )
        wl = Workload(np.full(4, 0.4), seed=6)
        cfg = SimConfig(cycles=40, seed=11)
        a = simulate(nl, wl, cfg)
        b = simulate(nl, wl, cfg)
        assert (a.logic_prob == b.logic_prob).all()
        assert (a.tr01_prob == b.tr01_prob).all()


class TestWorkloadSeedOwnership:
    """Regression: ``simulate`` used to override every workload's seed with
    ``SimConfig.seed``, so distinct workloads in one dataset replayed the
    same underlying uniform draws (correlated samples)."""

    def _two_pi_netlist(self):
        nl = Netlist("pis2")
        a = nl.add_pi("a")
        g = nl.add_gate(GateType.NOT, [a], "g")
        nl.add_po(g)
        return nl

    def test_distinct_workload_seeds_decorrelate_stimulus(self):
        nl = self._two_pi_netlist()
        cfg = SimConfig(cycles=64, streams=64, seed=9)
        wl_a = Workload(np.array([0.5]), "a", seed=1)
        wl_b = Workload(np.array([0.5]), "b", seed=2)
        res_a = simulate(nl, wl_a, cfg)
        res_b = simulate(nl, wl_b, cfg)
        # Identical probabilities, identical SimConfig — under the old bug
        # both runs were bitwise identical.  Different seeds must yield
        # different empirical statistics.
        assert not np.array_equal(res_a.logic_prob, res_b.logic_prob)
        assert not np.array_equal(res_a.tr01_prob, res_b.tr01_prob)

    def test_same_workload_seed_reproduces(self):
        nl = self._two_pi_netlist()
        wl = Workload(np.array([0.5]), seed=3)
        # The config seed no longer leaks into pattern generation.
        a = simulate(nl, wl, SimConfig(cycles=64, streams=64, seed=0))
        b = simulate(nl, wl, SimConfig(cycles=64, streams=64, seed=17))
        assert np.array_equal(a.logic_prob, b.logic_prob)
        assert np.array_equal(a.tr01_prob, b.tr01_prob)

    def test_replay_seed_overrides_workload_seed(self):
        nl = self._two_pi_netlist()
        cfg = SimConfig(cycles=64, streams=64, seed=0)
        via_workload = simulate(nl, Workload(np.array([0.5]), seed=5), cfg)
        via_replay = simulate(
            nl, Workload(np.array([0.5]), seed=1), cfg, replay_seed=5
        )
        assert np.array_equal(via_workload.logic_prob, via_replay.logic_prob)
        assert np.array_equal(via_workload.tr01_prob, via_replay.tr01_prob)
