"""Property-based invariants of the logic simulator.

These cross-check structural truths that hold *per sample*, not just in
expectation — any violation is a simulator bug, independent of sampling
noise.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.circuit.aig import to_aig
from repro.circuit.gates import GateType
from repro.circuit.generate import GeneratorConfig, random_sequential_netlist
from repro.sim.logicsim import SimConfig, simulate
from repro.sim.workload import Workload, random_workload


def simulate_random(seed: int, n_dffs: int = 3, cycles: int = 40):
    nl = to_aig(
        random_sequential_netlist(
            GeneratorConfig(n_pis=4, n_dffs=n_dffs, n_gates=25), seed=seed
        )
    ).aig
    wl = random_workload(nl, seed + 1)
    res = simulate(nl, wl, SimConfig(cycles=cycles, seed=seed))
    return nl, res


class TestStructuralInvariants:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=5000))
    def test_and_prob_bounded_by_fanins(self, seed):
        """count(AND=1) <= count(fanin=1) holds sample-by-sample."""
        nl, res = simulate_random(seed)
        for node in nl.nodes_of_type(GateType.AND):
            for f in nl.fanins(node):
                assert res.logic_prob[node] <= res.logic_prob[f] + 1e-12

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=5000))
    def test_not_prob_complement(self, seed):
        """A NOT's logic probability is exactly 1 - its fanin's."""
        nl, res = simulate_random(seed)
        for node in nl.nodes_of_type(GateType.NOT):
            (f,) = nl.fanins(node)
            assert res.logic_prob[node] == pytest.approx(
                1.0 - res.logic_prob[f], abs=1e-12
            )

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=5000))
    def test_not_transitions_mirror_fanin(self, seed):
        """A NOT output rises exactly when its input falls."""
        nl, res = simulate_random(seed)
        for node in nl.nodes_of_type(GateType.NOT):
            (f,) = nl.fanins(node)
            assert res.tr01_prob[node] == pytest.approx(
                res.tr10_prob[f], abs=1e-12
            )
            assert res.tr10_prob[node] == pytest.approx(
                res.tr01_prob[f], abs=1e-12
            )

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=5000))
    def test_toggle_rate_bounded_by_logic_prob(self, seed):
        """p01 <= min(p0, p1): a 0->1 transition needs a 0 and a 1."""
        nl, res = simulate_random(seed)
        p1 = res.logic_prob
        # Allow the edge-counting offset: pairs = cycles-1 but probs use
        # cycles, worth at most 1/(cycles-1).
        slack = 1.0 / (res.cycles - 1)
        assert (res.tr01_prob <= np.minimum(p1, 1 - p1) + slack).all()
        assert (res.tr10_prob <= np.minimum(p1, 1 - p1) + slack).all()

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=5000))
    def test_dff_tracks_its_source_shifted(self, seed):
        """A DFF's logic probability equals its data source's (stationary
        streams, one-cycle shift changes counts by at most 1 per stream)."""
        nl, res = simulate_random(seed, cycles=60)
        slack = 2.0 / res.cycles
        for d in nl.dffs:
            (src,) = nl.fanins(d)
            assert abs(res.logic_prob[d] - res.logic_prob[src]) <= slack


class TestConstantInputs:
    def test_all_zero_workload_freezes_logic(self):
        nl = to_aig(
            random_sequential_netlist(
                GeneratorConfig(n_pis=4, n_dffs=2, n_gates=20), seed=3
            )
        ).aig
        wl = Workload(np.zeros(len(nl.pis)), "allzero")
        res = simulate(nl, wl, SimConfig(cycles=50, warmup=30, seed=0))
        # After warmup from the all-zero state with constant inputs, the
        # circuit reaches a fixed point or a short cycle; transition
        # activity comes only from FF oscillators, never from PIs.
        for pi in nl.pis:
            assert res.tr01_prob[pi] == 0.0
            assert res.logic_prob[pi] == 0.0

    def test_all_one_workload_pins_pis(self):
        nl = to_aig(
            random_sequential_netlist(
                GeneratorConfig(n_pis=3, n_dffs=2, n_gates=15), seed=4
            )
        ).aig
        wl = Workload(np.ones(len(nl.pis)), "allone")
        res = simulate(nl, wl, SimConfig(cycles=30, seed=0))
        for pi in nl.pis:
            assert res.logic_prob[pi] == 1.0
            assert res.toggle_rate[pi] == 0.0
