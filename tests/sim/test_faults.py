"""Tests for Monte-Carlo fault injection (repro.sim.faults)."""

import numpy as np
import pytest

from repro.circuit.gates import GateType
from repro.circuit.generate import GeneratorConfig, random_sequential_netlist
from repro.circuit.netlist import Netlist
from repro.sim.faults import FaultConfig, simulate_with_faults
from repro.sim.logicsim import SimConfig
from repro.sim.workload import Workload, random_workload


@pytest.fixture()
def circuit():
    return random_sequential_netlist(
        GeneratorConfig(n_pis=5, n_dffs=4, n_gates=40), seed=21
    )


@pytest.fixture()
def workload(circuit):
    return random_workload(circuit, seed=2)


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            FaultConfig(fault_rate=1.5)
        with pytest.raises(ValueError):
            FaultConfig(episode_cycles=1)

    def test_effective_rate_per_pattern(self):
        fc = FaultConfig(fault_rate=5e-4, episode_cycles=100, per_pattern=True)
        assert fc.effective_cycle_rate == pytest.approx(5e-6)

    def test_effective_rate_per_cycle(self):
        fc = FaultConfig(fault_rate=5e-4, per_pattern=False)
        assert fc.effective_cycle_rate == pytest.approx(5e-4)


class TestFaultFree:
    def test_zero_rate_gives_perfect_reliability(self, circuit, workload):
        res = simulate_with_faults(
            circuit,
            workload,
            SimConfig(cycles=60, seed=3),
            FaultConfig(fault_rate=0.0),
        )
        assert res.reliability == 1.0
        assert res.err01.max() == 0.0
        assert res.err10.max() == 0.0


class TestFaulty:
    def test_errors_increase_with_rate(self, circuit, workload):
        cfg = SimConfig(cycles=100, seed=3)
        low = simulate_with_faults(
            circuit, workload, cfg, FaultConfig(fault_rate=1e-3, per_pattern=False)
        )
        high = simulate_with_faults(
            circuit, workload, cfg, FaultConfig(fault_rate=3e-2, per_pattern=False)
        )
        assert high.err01.mean() > low.err01.mean()
        assert high.reliability < low.reliability

    def test_reliability_in_unit_interval(self, circuit, workload):
        res = simulate_with_faults(
            circuit, workload, SimConfig(cycles=80, seed=3), FaultConfig()
        )
        assert 0.0 <= res.reliability <= 1.0
        assert (res.err01 >= 0).all() and (res.err01 <= 1).all()
        assert (res.err10 >= 0).all() and (res.err10 <= 1).all()

    def test_error_prob_shape(self, circuit, workload):
        res = simulate_with_faults(
            circuit, workload, SimConfig(cycles=40, seed=1), FaultConfig()
        )
        assert res.error_prob.shape == (len(circuit), 2)

    def test_pis_never_err(self, circuit, workload):
        """Faults hit combinational gates; PI values are stimulus."""
        res = simulate_with_faults(
            circuit,
            workload,
            SimConfig(cycles=60, seed=3),
            FaultConfig(fault_rate=1e-2, per_pattern=False),
        )
        for pi in circuit.pis:
            assert res.err01[pi] == 0.0
            assert res.err10[pi] == 0.0

    def test_deterministic(self, circuit, workload):
        args = (circuit, workload, SimConfig(cycles=50, seed=9), FaultConfig(seed=4))
        a = simulate_with_faults(*args)
        b = simulate_with_faults(*args)
        assert a.reliability == b.reliability
        assert (a.err01 == b.err01).all()

    def test_episode_reset_bounds_divergence(self):
        """Short episodes must not let state divergence accumulate: the
        same total cycle count split into shorter patterns yields equal or
        higher reliability."""
        nl = random_sequential_netlist(
            GeneratorConfig(n_pis=4, n_dffs=6, n_gates=50), seed=31
        )
        wl = random_workload(nl, 5)
        cfg = SimConfig(cycles=240, seed=7)
        rate = FaultConfig(fault_rate=2e-2, per_pattern=False, episode_cycles=120)
        long_ep = simulate_with_faults(nl, wl, cfg, rate)
        short = FaultConfig(fault_rate=2e-2, per_pattern=False, episode_cycles=20)
        short_ep = simulate_with_faults(nl, wl, cfg, short)
        assert short_ep.reliability >= long_ep.reliability - 0.02


class TestObservationCounts:
    def test_observed_counts_partition_samples(self, circuit, workload):
        cfg = SimConfig(cycles=50, seed=3)
        res = simulate_with_faults(circuit, workload, cfg, FaultConfig())
        total = res.observed0 + res.observed1
        assert (total == total[0]).all(), "every node observed equally often"


class TestGoldenActivityStats:
    def test_golden_logic_prob_matches_standalone_sim(self, circuit, workload):
        # With a single episode (episode_cycles >= cycles) the golden
        # machine runs exactly the schedule of ``simulate`` — reset, one
        # warmup stretch, observed cycles — on the same pattern stream, so
        # the exposed golden stats must be float64-bitwise identical to a
        # standalone fault-free simulation.  This is what lets
        # build_reliability_dataset drop its second full simulation.
        from repro.sim.logicsim import simulate

        cfg = SimConfig(cycles=60, seed=3)
        fault = FaultConfig(episode_cycles=60, seed=4)
        res = simulate_with_faults(circuit, workload, cfg, fault)
        golden = simulate(circuit, workload, cfg)
        assert np.array_equal(res.golden_logic_prob, golden.logic_prob)

    def test_sample_counts_cover_every_observed_cycle(self, circuit, workload):
        cfg = SimConfig(cycles=50, streams=64, seed=3)
        res = simulate_with_faults(circuit, workload, cfg, FaultConfig())
        total = res.observed0 + res.observed1
        assert (total == total[0]).all(), "every node observed every sample"
        assert res.samples == 50 * 64
        assert (res.golden_logic_prob >= 0).all()
        assert (res.golden_logic_prob <= 1).all()

    def test_workload_seed_drives_fault_sim_stimulus(self, circuit):
        # The lockstep source follows the workload's seed (like simulate);
        # distinct seeds must decorrelate the golden statistics.
        cfg = SimConfig(cycles=40, seed=3)
        probs = np.full(len(circuit.pis), 0.5)
        res_a = simulate_with_faults(
            circuit, Workload(probs, seed=1), cfg, FaultConfig()
        )
        res_b = simulate_with_faults(
            circuit, Workload(probs, seed=2), cfg, FaultConfig()
        )
        assert not np.array_equal(res_a.golden_logic_prob, res_b.golden_logic_prob)
