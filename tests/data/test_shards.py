"""Tests for dataset persistence (repro.data.shards)."""

import json

import numpy as np
import pytest

from repro.circuit.benchmarks import family_subcircuits
from repro.data import ShardReader, load_manifest, write_shards
from repro.sim.logicsim import SimConfig
from repro.train.dataset import build_dataset

SIM = SimConfig(cycles=30, streams=64, seed=1)


@pytest.fixture(scope="module")
def dataset():
    # iscas89 sub-circuits are sequential (DFF loops), which exercises the
    # dangling-fanin reconstruction path.
    circuits = family_subcircuits("iscas89", 5, seed=4)
    return build_dataset(circuits, SIM, seed=0, keep_sim=False)


@pytest.fixture()
def written(dataset, tmp_path):
    write_shards(dataset, tmp_path, shard_size=2, name="unit", meta={"seed": 0})
    return tmp_path


class TestRoundTrip:
    def test_bitwise_equal_to_in_memory_build(self, dataset, written):
        reader = ShardReader(written)
        assert len(reader) == len(dataset)
        for a, b in zip(dataset, reader):
            assert a.name == b.name
            assert np.array_equal(a.target_tr, b.target_tr)
            assert np.array_equal(a.target_lg, b.target_lg)
            assert np.array_equal(a.workload.pi_probs, b.workload.pi_probs)
            assert a.workload.seed == b.workload.seed
            assert a.workload.name == b.workload.name

    def test_reconstructed_structure_identical(self, dataset, written):
        for a, b in zip(dataset, ShardReader(written)):
            assert (
                a.graph.netlist.fingerprint() == b.graph.netlist.fingerprint()
            ), "netlist structure must survive the round-trip"
            b.graph.netlist.validate()

    def test_random_access_and_slicing(self, dataset, written):
        reader = ShardReader(written)
        assert np.array_equal(reader[3].target_lg, dataset[3].target_lg)
        assert np.array_equal(reader[-1].target_lg, dataset[-1].target_lg)
        sliced = reader[1:3]
        assert [s.name for s in sliced] == [s.name for s in dataset[1:3]]

    def test_samples_are_lean(self, written):
        assert all(s.extras == {} for s in ShardReader(written))


class TestManifest:
    def test_contents(self, dataset, written):
        manifest = load_manifest(written)
        assert manifest["num_samples"] == len(dataset)
        assert manifest["kind"] == "sim"
        assert manifest["name"] == "unit"
        assert manifest["meta"] == {"seed": 0}
        assert sum(s["count"] for s in manifest["shards"]) == len(dataset)
        assert len(manifest["shards"]) == (len(dataset) + 1) // 2

    def test_unsupported_version_rejected(self, written):
        path = written / "manifest.json"
        manifest = json.loads(path.read_text())
        manifest["version"] = 999
        path.write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="version"):
            ShardReader(written)

    def test_bad_shard_size_rejected(self, dataset, tmp_path):
        with pytest.raises(ValueError):
            write_shards(dataset, tmp_path, shard_size=0)


class TestStreaming:
    def test_reader_bounds_open_shards(self, dataset, written):
        reader = ShardReader(written, cached_shards=1)
        for s in reader:
            pass
        assert len(reader._handles) == 1, "only one shard file stays open"
        # Shuffled access never holds more than the configured handles.
        for i in (4, 0, 3, 1, 4, 2):
            reader[i]
            assert len(reader._handles) == 1
        reader.close()
        assert len(reader._handles) == 0
        # The reader reopens shards after close.
        assert reader[0].name == dataset[0].name

    def test_feeds_packed_minibatches(self, dataset, written):
        from repro.runtime.trainstep import make_minibatches

        reader = ShardReader(written)
        batches = make_minibatches(reader, batch_size=2)
        assert sum(b.num_members for b in batches) == len(dataset)

    def test_trains_a_model(self, written):
        from repro.models.deepseq import DeepSeq
        from repro.models.base import ModelConfig
        from repro.train.trainer import TrainConfig, Trainer

        reader = ShardReader(written)
        model = DeepSeq(ModelConfig(hidden=8, iterations=2, seed=0))
        history = Trainer(TrainConfig(epochs=1, batch_size=2)).train(model, reader)
        assert len(history) == 1 and np.isfinite(history[0].loss)


class TestIndexing:
    def test_out_of_range_raises(self, written):
        reader = ShardReader(written)
        with pytest.raises(IndexError):
            reader[len(reader)]
        with pytest.raises(IndexError):
            reader[-len(reader) - 1]
