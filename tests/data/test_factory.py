"""Differential tests for the parallel data factory (repro.data.factory).

The factory's core guarantee: serial, pooled and warm-cache builds are
float64-bitwise-identical to the reference loops in
:mod:`repro.train.dataset` — scheduling and caching never touch label
values.
"""

import numpy as np
import pytest

from repro.circuit.benchmarks import family_subcircuits
from repro.data import DataFactory, FactoryConfig, get_factory, set_factory
from repro.sim.faults import FaultConfig, simulate_with_faults
from repro.sim.logicsim import SimConfig, simulate
from repro.sim.workload import random_workload
from repro.train.dataset import build_dataset, build_reliability_dataset

SIM = SimConfig(cycles=30, streams=64, seed=1)
FAULT = FaultConfig(fault_rate=1e-2, per_pattern=False, seed=2)


@pytest.fixture(scope="module")
def circuits():
    return family_subcircuits("iscas89", 3, seed=4)


@pytest.fixture(scope="module")
def reference(circuits):
    return build_dataset(circuits, SIM, seed=0)


def assert_bitwise(a, b):
    assert a.name == b.name
    assert np.array_equal(a.target_tr, b.target_tr)
    assert np.array_equal(a.target_lg, b.target_lg)
    assert np.array_equal(a.workload.pi_probs, b.workload.pi_probs)
    assert a.workload.seed == b.workload.seed


class TestBuildDifferential:
    def test_serial_factory_matches_reference(self, circuits, reference):
        built = DataFactory(FactoryConfig(workers=0)).build(circuits, SIM, seed=0)
        for a, b in zip(reference, built):
            assert_bitwise(a, b)

    def test_pooled_factory_matches_reference(self, circuits, reference):
        built = DataFactory(FactoryConfig(workers=2)).build(circuits, SIM, seed=0)
        for a, b in zip(reference, built):
            assert_bitwise(a, b)

    def test_warm_memory_matches_reference(self, circuits, reference):
        factory = DataFactory(FactoryConfig(workers=0))
        factory.build(circuits, SIM, seed=0)
        warm = factory.build(circuits, SIM, seed=0)
        assert factory.stats.misses == len(circuits), "second build all-hit"
        assert factory.stats.memory_hits >= len(circuits)
        for a, b in zip(reference, warm):
            assert_bitwise(a, b)

    def test_warm_disk_matches_reference(self, circuits, reference, tmp_path):
        DataFactory(FactoryConfig(workers=0, cache_dir=tmp_path)).build(
            circuits, SIM, seed=0
        )
        fresh = DataFactory(FactoryConfig(workers=0, cache_dir=tmp_path))
        warm = fresh.build(circuits, SIM, seed=0)
        assert fresh.stats.misses == 0
        assert fresh.stats.disk_hits == len(circuits)
        for a, b in zip(reference, warm):
            assert_bitwise(a, b)

    def test_reliability_matches_reference(self, circuits):
        serial = build_reliability_dataset(circuits[:2], SIM, FAULT, seed=0)
        built = DataFactory(FactoryConfig(workers=0)).build_reliability(
            circuits[:2], SIM, FAULT, seed=0
        )
        for a, b in zip(serial, built):
            assert_bitwise(a, b)

    def test_explicit_workloads(self, circuits, reference):
        wls = [s.workload for s in reference]
        built = DataFactory(FactoryConfig(workers=0)).build(
            circuits, SIM, workloads=wls
        )
        for a, b in zip(reference, built):
            assert_bitwise(a, b)


class TestExtras:
    def test_lean_by_default(self, circuits):
        built = DataFactory(FactoryConfig(workers=0)).build(circuits, SIM, seed=0)
        assert all(s.extras == {} for s in built)

    def test_keep_sim_reconstructs_full_result(self, circuits):
        built = DataFactory(FactoryConfig(workers=0)).build(
            circuits, SIM, seed=0, keep_sim=True
        )
        s = built[0]
        res = s.extras["sim"]
        direct = simulate(circuits[0], s.workload, SIM)
        assert np.array_equal(res.logic_prob, direct.logic_prob)
        assert np.array_equal(res.transition_prob, direct.transition_prob)
        assert res.cycles == direct.cycles and res.streams == direct.streams
        assert res.netlist is circuits[0]

    def test_keep_sim_reliability(self, circuits):
        built = DataFactory(FactoryConfig(workers=0)).build_reliability(
            circuits[:1], SIM, FAULT, seed=0, keep_sim=True
        )
        res = built[0].extras["faults"]
        direct = simulate_with_faults(circuits[0], built[0].workload, SIM, FAULT)
        assert np.array_equal(res.error_prob, direct.error_prob)
        assert res.reliability == direct.reliability


class TestScheduling:
    def test_duplicate_jobs_simulated_once(self, circuits):
        factory = DataFactory(FactoryConfig(workers=0))
        nl = circuits[0]
        wl = random_workload(nl, seed=5)
        built = factory.build([nl, nl, nl], SIM, workloads=[wl, wl, wl])
        assert factory.stats.misses == 1, "identical digests collapse"
        for a, b in zip(built, built[1:]):
            assert np.array_equal(a.target_tr, b.target_tr)

    def test_single_sim_cached(self, circuits):
        factory = DataFactory(FactoryConfig(workers=0))
        wl = random_workload(circuits[0], seed=6)
        a = factory.simulate(circuits[0], wl, SIM)
        b = factory.simulate(circuits[0], wl, SIM)
        assert factory.stats.misses == 1
        assert np.array_equal(a.logic_prob, b.logic_prob)
        direct = simulate(circuits[0], wl, SIM)
        assert np.array_equal(a.logic_prob, direct.logic_prob)
        assert np.array_equal(a.tr01_prob, direct.tr01_prob)

    def test_single_fault_sim_cached(self, circuits):
        factory = DataFactory(FactoryConfig(workers=0))
        wl = random_workload(circuits[0], seed=6)
        a = factory.simulate_faults(circuits[0], wl, SIM, FAULT)
        factory.simulate_faults(circuits[0], wl, SIM, FAULT)
        assert factory.stats.misses == 1
        direct = simulate_with_faults(circuits[0], wl, SIM, FAULT)
        assert np.array_equal(a.error_prob, direct.error_prob)
        assert np.array_equal(a.golden_logic_prob, direct.golden_logic_prob)
        assert a.reliability == direct.reliability

    def test_mixed_kinds_do_not_collide(self, circuits):
        factory = DataFactory(FactoryConfig(workers=0))
        wl = random_workload(circuits[0], seed=6)
        sim_res = factory.simulate(circuits[0], wl, SIM)
        fault_res = factory.simulate_faults(circuits[0], wl, SIM, FAULT)
        assert factory.stats.misses == 2
        assert not np.array_equal(sim_res.transition_prob, fault_res.error_prob)


class TestPackedScheduling:
    """pack_size groups misses into super-graph sweeps; label values and
    cache keys must be unaffected by the grouping."""

    @pytest.mark.parametrize("pack_size", [1, 2, 3, 8])
    def test_build_bitwise_across_pack_sizes(
        self, circuits, reference, pack_size
    ):
        factory = DataFactory(FactoryConfig(workers=0, pack_size=pack_size))
        built = factory.build(circuits, SIM, seed=0)
        for a, b in zip(reference, built):
            assert_bitwise(a, b)

    @pytest.mark.parametrize("pack_size", [1, 4])
    def test_simulate_many_matches_direct(self, circuits, pack_size):
        workloads = [random_workload(nl, 50 + i) for i, nl in enumerate(circuits)]
        factory = DataFactory(FactoryConfig(workers=0, pack_size=pack_size))
        got = factory.simulate_many(list(circuits), workloads, SIM)
        for nl, wl, g in zip(circuits, workloads, got):
            ref = simulate(nl, wl, SIM)
            assert np.array_equal(ref.logic_prob, g.logic_prob)
            assert np.array_equal(ref.tr01_prob, g.tr01_prob)
            assert np.array_equal(ref.tr10_prob, g.tr10_prob)

    def test_simulate_faults_many_matches_direct(self, circuits):
        workloads = [random_workload(nl, 60 + i) for i, nl in enumerate(circuits)]
        factory = DataFactory(FactoryConfig(workers=0, pack_size=2))
        got = factory.simulate_faults_many(
            list(circuits), workloads, SIM, FAULT
        )
        for nl, wl, g in zip(circuits, workloads, got):
            ref = simulate_with_faults(nl, wl, SIM, FAULT)
            assert np.array_equal(ref.err01, g.err01)
            assert np.array_equal(ref.err10, g.err10)
            assert ref.reliability == g.reliability

    def test_packed_build_reads_unpacked_cache(self, circuits, tmp_path):
        unpacked = DataFactory(
            FactoryConfig(workers=0, pack_size=1, cache_dir=tmp_path)
        )
        unpacked.build(circuits, SIM, seed=0)
        packed = DataFactory(
            FactoryConfig(workers=0, pack_size=8, cache_dir=tmp_path)
        )
        packed.build(circuits, SIM, seed=0)
        assert packed.stats.misses == 0, "pack grouping must not move keys"
        assert packed.stats.disk_hits == len(circuits)

    def test_pooled_packed_build_matches_reference(self, circuits, reference):
        factory = DataFactory(FactoryConfig(workers=2, pack_size=2))
        built = factory.build(circuits, SIM, seed=0)
        for a, b in zip(reference, built):
            assert_bitwise(a, b)


class TestForkSafety:
    """The simulation pool must use an explicit safe start method.

    Default ``fork`` snapshots the parent's locks — a fork taken while a
    serve worker holds a model or metrics lock produces a child that
    deadlocks on first acquire.  The factory therefore resolves its pool
    context through :func:`repro.runtime.mp.resolve_mp_context`.
    """

    def test_config_exposes_start_method(self):
        cfg = FactoryConfig(workers=2, mp_start_method="spawn")
        assert cfg.mp_start_method == "spawn"
        assert FactoryConfig().mp_start_method is None

    def test_pooled_build_with_live_server(self, circuits, reference):
        """The regression: a pooled build while a threaded Server is live
        (its workers holding/releasing locks under traffic) must complete
        and stay bitwise-correct.  Under fork start this interleaving can
        deadlock the pool children; forkserver/spawn cannot inherit the
        server's lock states at all."""
        from repro.models.base import ModelConfig
        from repro.models.deepseq import DeepSeq
        from repro.serve import Server
        from tests.conftest import build_pair

        model = DeepSeq(ModelConfig(hidden=10, iterations=2, seed=0))
        pair = build_pair(seed=0, n_dffs=2, n_gates=20)
        with Server(model, workers=2, batch_size=2, max_latency_ms=5,
                    dtype="float64") as srv:
            stop = False

            def traffic():
                while not stop:
                    srv.predict(*pair)

            import threading

            t = threading.Thread(target=traffic)
            t.start()
            try:
                # This box may report 1 CPU; force a real pool.
                built = DataFactory(FactoryConfig(workers=2)).build(
                    circuits, SIM, seed=0
                )
            finally:
                stop = True
                t.join(timeout=60)
            assert not t.is_alive()
        for a, b in zip(reference, built):
            assert_bitwise(a, b)


class TestDefaultFactory:
    def test_env_configuration(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_DATA_CACHE", str(tmp_path / "cache"))
        monkeypatch.setenv("REPRO_DATA_WORKERS", "0")
        set_factory(None)
        try:
            factory = get_factory()
            assert factory is get_factory(), "singleton"
            assert factory.config.resolve_workers() == 0
            assert str(factory.cache.cache_dir) == str(tmp_path / "cache")
        finally:
            set_factory(None)

    def test_pack_env_configuration(self, monkeypatch):
        monkeypatch.setenv("REPRO_DATA_WORKERS", "0")
        monkeypatch.setenv("REPRO_DATA_PACK", "3")
        set_factory(None)
        try:
            assert get_factory().config.pack_size == 3
        finally:
            set_factory(None)

    def test_set_factory_overrides(self):
        custom = DataFactory(FactoryConfig(workers=0))
        set_factory(custom)
        try:
            assert get_factory() is custom
        finally:
            set_factory(None)


class TestFingerprintShipping:
    """Pooled builds ship netlists to workers once, by fingerprint.

    Each unique netlist is pickled a single time into the pool
    initializer payload; jobs then carry only the fingerprint string.
    The shipping mechanics must be invisible in the results.
    """

    def test_pooled_unpacked_build_matches_reference(self, circuits, reference):
        built = DataFactory(FactoryConfig(workers=2, pack_size=1)).build(
            circuits, SIM, seed=0
        )
        for a, b in zip(reference, built):
            assert_bitwise(a, b)

    def test_pooled_packed_simulate_many_matches_direct(self, circuits):
        workloads = [random_workload(nl, 70 + i) for i, nl in enumerate(circuits)]
        factory = DataFactory(FactoryConfig(workers=2, pack_size=2))
        got = factory.simulate_many(list(circuits), workloads, SIM)
        for nl, wl, g in zip(circuits, workloads, got):
            ref = simulate(nl, wl, SIM)
            assert np.array_equal(ref.logic_prob, g.logic_prob)
            assert np.array_equal(ref.tr01_prob, g.tr01_prob)
            assert np.array_equal(ref.tr10_prob, g.tr10_prob)

    def test_pooled_faults_match_direct(self, circuits):
        workloads = [random_workload(nl, 80 + i) for i, nl in enumerate(circuits)]
        factory = DataFactory(FactoryConfig(workers=2, pack_size=1))
        got = factory.simulate_faults_many(list(circuits), workloads, SIM, FAULT)
        for nl, wl, g in zip(circuits, workloads, got):
            ref = simulate_with_faults(nl, wl, SIM, FAULT)
            assert np.array_equal(ref.err01, g.err01)
            assert np.array_equal(ref.err10, g.err10)
            assert ref.reliability == g.reliability

    def test_payload_dedups_duplicate_netlists(self, circuits):
        import pickle

        nl = circuits[0]
        batch = [nl, nl, circuits[1], nl]
        fps = [c.fingerprint() for c in batch]
        payload = DataFactory._pending_payload(batch, fps, range(len(batch)))
        shipped = pickle.loads(payload)
        assert set(shipped) == {circuits[0].fingerprint(), circuits[1].fingerprint()}
        assert len(shipped) == 2, "duplicate netlists pickled once"

    def test_pooled_build_with_duplicates_matches_serial(self, circuits):
        nl = circuits[0]
        batch = [nl, nl, circuits[1]]
        wls = [random_workload(c, 90 + i) for i, c in enumerate(batch)]
        serial = DataFactory(FactoryConfig(workers=0)).build(
            batch, SIM, workloads=wls
        )
        pooled = DataFactory(FactoryConfig(workers=2)).build(
            batch, SIM, workloads=wls
        )
        for a, b in zip(serial, pooled):
            assert_bitwise(a, b)

    def test_unregistered_fingerprint_is_a_hard_error(self):
        from repro.data.factory import _registered

        with pytest.raises(RuntimeError, match="fingerprint"):
            _registered("no-such-fp")
