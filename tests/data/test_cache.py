"""Tests for the content-addressed label cache (repro.data.cache)."""

import numpy as np
import pytest

from repro.data.cache import LabelCache, label_key
from repro.sim.faults import FaultConfig
from repro.sim.logicsim import SimConfig
from repro.sim.workload import Workload


FP = "a" * 64
WL = Workload(np.array([0.25, 0.75]), name="w", seed=7)
SIM = SimConfig(cycles=40, streams=64, seed=1)


class TestLabelKey:
    def test_deterministic(self):
        assert label_key("sim", FP, WL, SIM) == label_key("sim", FP, WL, SIM)

    def test_workload_name_is_cosmetic(self):
        renamed = Workload(WL.pi_probs, name="other", seed=WL.seed)
        assert label_key("sim", FP, WL, SIM) == label_key("sim", FP, renamed, SIM)

    def test_streams_normalize_to_words(self):
        # The simulator rounds streams up to whole 64-bit words, so 60 and
        # 64 run identical lanes — one cache entry, not two.
        a = label_key("sim", FP, WL, SimConfig(cycles=40, streams=60))
        b = label_key("sim", FP, WL, SimConfig(cycles=40, streams=64))
        c = label_key("sim", FP, WL, SimConfig(cycles=40, streams=65))
        assert a == b
        assert a != c

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda: label_key("fault", FP, WL, SIM),
            lambda: label_key("sim", "b" * 64, WL, SIM),
            lambda: label_key("sim", FP, Workload(WL.pi_probs, seed=8), SIM),
            lambda: label_key(
                "sim", FP, Workload(np.array([0.25, 0.74]), seed=7), SIM
            ),
            lambda: label_key("sim", FP, WL, SimConfig(cycles=41, streams=64, seed=1)),
            lambda: label_key("sim", FP, WL, SimConfig(cycles=40, streams=128, seed=1)),
            lambda: label_key(
                "sim", FP, WL, SimConfig(cycles=40, streams=64, seed=2)
            ),
            lambda: label_key(
                "sim", FP, WL, SimConfig(cycles=40, streams=64, seed=1, warmup=9)
            ),
            lambda: label_key(
                "sim",
                FP,
                WL,
                SimConfig(cycles=40, streams=64, seed=1, init_state="random"),
            ),
            lambda: label_key("sim", FP, WL, SIM, FaultConfig()),
        ],
    )
    def test_every_input_field_invalidates(self, mutate):
        assert mutate() != label_key("sim", FP, WL, SIM)

    @pytest.mark.parametrize(
        "a,b",
        [
            (FaultConfig(fault_rate=1e-3), FaultConfig(fault_rate=2e-3)),
            (FaultConfig(episode_cycles=100), FaultConfig(episode_cycles=50)),
            (FaultConfig(per_pattern=True), FaultConfig(per_pattern=False)),
            (FaultConfig(seed=1), FaultConfig(seed=2)),
        ],
    )
    def test_fault_config_fields_invalidate(self, a, b):
        assert label_key("fault", FP, WL, SIM, a) != label_key(
            "fault", FP, WL, SIM, b
        )


class TestMemoryTier:
    def test_roundtrip_and_stats(self):
        cache = LabelCache()
        key = label_key("sim", FP, WL, SIM)
        assert cache.get(key) is None
        cache.put(key, {"x": np.arange(3.0)})
        hit = cache.get(key)
        assert hit is not None and (hit["x"] == np.arange(3.0)).all()
        st = cache.stats
        assert (st.memory_hits, st.disk_hits, st.misses, st.puts) == (1, 0, 1, 1)

    def test_lru_eviction(self):
        cache = LabelCache(memory_entries=2)
        for i in range(3):
            cache.put(f"{i:064d}", {"v": np.asarray(i)})
        assert cache.get(f"{0:064d}") is None, "oldest entry evicted"
        assert cache.get(f"{2:064d}") is not None
        assert cache.stats.evictions == 1

    def test_clear_memory(self):
        cache = LabelCache()
        cache.put("k" * 64, {"v": np.asarray(1)})
        cache.clear_memory()
        assert cache.get("k" * 64) is None


class TestDiskTier:
    def test_persists_across_instances(self, tmp_path):
        a = LabelCache(cache_dir=tmp_path)
        key = label_key("sim", FP, WL, SIM)
        a.put(key, {"lg": np.linspace(0, 1, 5), "n": np.asarray(5)})
        assert a.disk_entries() == 1

        b = LabelCache(cache_dir=tmp_path)
        hit = b.get(key)
        assert hit is not None
        assert (hit["lg"] == np.linspace(0, 1, 5)).all()
        assert b.stats.disk_hits == 1
        # Second read is served from memory.
        b.get(key)
        assert b.stats.memory_hits == 1

    def test_no_temp_files_left_behind(self, tmp_path):
        cache = LabelCache(cache_dir=tmp_path)
        for i in range(4):
            cache.put(f"{i:064x}", {"v": np.asarray(i)})
        leftovers = [p for p in tmp_path.rglob("*") if p.suffix == ".tmp"]
        assert leftovers == []

    def test_corrupt_entry_treated_as_miss(self, tmp_path):
        cache = LabelCache(cache_dir=tmp_path)
        key = label_key("sim", FP, WL, SIM)
        cache.put(key, {"v": np.asarray(1)})
        path = tmp_path / key[:2] / f"{key}.npz"
        path.write_bytes(b"not an npz")
        fresh = LabelCache(cache_dir=tmp_path)
        assert fresh.get(key) is None
        assert fresh.stats.misses == 1

    def test_memory_only_cache_reports_zero_disk(self):
        assert LabelCache().disk_entries() == 0


class TestImmutability:
    def test_cached_arrays_are_read_only(self):
        cache = LabelCache()
        key = label_key("sim", FP, WL, SIM)
        arr = np.arange(4.0)
        cache.put(key, {"x": arr})
        hit = cache.get(key)
        with pytest.raises(ValueError):
            hit["x"][0] = 99.0
        with pytest.raises(ValueError):
            arr[0] = 99.0  # put() freezes the caller's array too

    def test_disk_hits_are_read_only(self, tmp_path):
        a = LabelCache(cache_dir=tmp_path)
        key = label_key("sim", FP, WL, SIM)
        a.put(key, {"x": np.arange(4.0)})
        fresh = LabelCache(cache_dir=tmp_path)
        hit = fresh.get(key)
        with pytest.raises(ValueError):
            hit["x"] += 1.0

    def test_factory_sample_targets_cannot_corrupt_cache(self):
        from repro.circuit.benchmarks import family_subcircuits
        from repro.data import DataFactory, FactoryConfig

        circuits = family_subcircuits("iscas89", 1, seed=4)
        factory = DataFactory(FactoryConfig(workers=0))
        sample = factory.build(circuits, SIM, seed=0)[0]
        # target_lg aliases the cached array; in-place edits must raise.
        with pytest.raises(ValueError):
            sample.target_lg[0] = 0.5
        rebuilt = factory.build(circuits, SIM, seed=0)[0]
        assert np.array_equal(sample.target_lg, rebuilt.target_lg)
