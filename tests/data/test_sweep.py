"""Tests for coverage-screened workload sweeps (repro.data.sweep)."""

import numpy as np
import pytest

from repro.circuit.benchmarks import large_design
from repro.circuit.library import library_circuit
from repro.data import DataFactory, FactoryConfig, SweepConfig, sweep_workloads
from repro.sim.logicsim import SimConfig

SIM = SimConfig(cycles=32, streams=64, seed=1)


@pytest.fixture(scope="module")
def design():
    nl = large_design("ptc", scale=0.0625)
    nl.name = "ptc_small"
    return nl


def factory():
    return DataFactory(FactoryConfig(workers=0))


class TestScreening:
    def test_returns_requested_count_with_coverage(self, design):
        cfg = SweepConfig(count=4, min_full_coverage=0.05, sim=SIM)
        res = sweep_workloads(design, cfg, seed=0, factory=factory())
        assert len(res.workloads) == 4
        assert len(res.coverages) == 4
        for cov in res.coverages:
            assert cov.full_coverage >= 0.05
        names = [w.name for w in res.workloads]
        assert len(set(names)) == 4

    def test_strict_floor_rejects_candidates(self, design):
        fac = factory()
        loose = sweep_workloads(
            design, SweepConfig(count=3, min_full_coverage=0.0, sim=SIM),
            seed=0, factory=fac,
        )
        strict = sweep_workloads(
            design,
            SweepConfig(
                count=3,
                min_full_coverage=max(c.full_coverage for c in loose.coverages),
                sim=SIM,
                max_draws=64,
            ),
            seed=0,
            factory=fac,
        )
        assert strict.rejected >= 1, "raising the floor must reject someone"
        for cov in strict.coverages:
            assert cov.full_coverage >= max(
                c.full_coverage for c in loose.coverages
            )

    def test_impossible_floor_raises(self, design):
        cfg = SweepConfig(count=2, min_full_coverage=1.01, max_draws=6, sim=SIM)
        with pytest.raises(RuntimeError, match="exhausted"):
            sweep_workloads(design, cfg, seed=0, factory=factory())

    def test_deterministic(self, design):
        cfg = SweepConfig(count=3, sim=SIM)
        a = sweep_workloads(design, cfg, seed=5, factory=factory())
        b = sweep_workloads(design, cfg, seed=5, factory=factory())
        for x, y in zip(a.workloads, b.workloads):
            assert np.array_equal(x.pi_probs, y.pi_probs)
            assert x.seed == y.seed

    def test_parent_seeds_do_not_alias(self, design):
        cfg = SweepConfig(count=3, sim=SIM)
        fac = factory()
        a = sweep_workloads(design, cfg, seed=0, factory=fac)
        b = sweep_workloads(design, cfg, seed=1, factory=fac)
        seeds_a = {w.seed for w in a.workloads}
        seeds_b = {w.seed for w in b.workloads}
        assert not seeds_a & seeds_b

    def test_kinds_validated(self):
        with pytest.raises(ValueError):
            SweepConfig(kinds=("telepathy",))
        with pytest.raises(ValueError):
            SweepConfig(kinds=())
        with pytest.raises(ValueError):
            SweepConfig(count=0)


class TestCacheReuse:
    def test_build_after_sweep_is_free(self, design):
        fac = factory()
        cfg = SweepConfig(count=3, sim=SIM)
        res = sweep_workloads(design, cfg, seed=0, factory=fac)
        misses_after_sweep = fac.stats.misses
        dataset = fac.build([design] * 3, SIM, workloads=res.workloads)
        assert fac.stats.misses == misses_after_sweep, (
            "labels for accepted workloads must come from the sweep's cache"
        )
        assert len(dataset) == 3

    def test_acceptance_rate(self, design):
        res = sweep_workloads(
            design, SweepConfig(count=2, sim=SIM), seed=0, factory=factory()
        )
        assert 0.0 < res.acceptance_rate <= 1.0


class TestFullyCoverableCircuit:
    def test_counter_accepts_everything(self):
        # gray3 is a free-running counter: full coverage under any stimulus,
        # so even a floor of 1.0 accepts the first candidates drawn.
        nl = library_circuit("gray3")
        cfg = SweepConfig(count=2, min_full_coverage=1.0, sim=SIM)
        res = sweep_workloads(nl, cfg, seed=0, factory=factory())
        assert res.rejected == 0
