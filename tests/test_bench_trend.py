"""The benchmark-trend tool and the committed BENCH_*.json snapshots.

CI validates the snapshots with ``trend.py check`` on every PR; this
layer keeps the normalizers and the validator themselves honest so a
broken ``update`` can't write a snapshot ``check`` waves through.
"""

import json
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "benchmarks"))

import trend

SIM_RAW = {
    "cycles": 128,
    "streams": 64,
    "scenarios": {
        "small/fault": {"cycle_s": 0.6, "block_s": 0.07, "speedup": 8.6},
        "small/packed-fault@K8": {
            "sequential_s": 0.5,
            "packed_s": 0.13,
            "speedup": 3.9,
            "members": 8,
        },
    },
}


def test_committed_snapshots_validate():
    paths = sorted(trend.REPO_ROOT.glob("BENCH_*.json"))
    assert len(paths) == len(trend.BENCHES), "one snapshot per benchmark"
    for path in paths:
        trend.validate_snapshot(json.loads(path.read_text()), path.name)


def test_update_normalizes_and_rolls(tmp_path):
    src = tmp_path / "sim-benchmark.json"
    src.write_text(json.dumps(SIM_RAW))
    out = tmp_path / "BENCH_SIM.json"
    for i in range(3):
        trend.update_snapshot("sim", src, commit=f"c{i}", keep=2, out_path=out)
    doc = json.loads(out.read_text())
    trend.validate_snapshot(doc, "BENCH_SIM.json")
    assert [e["commit"] for e in doc["entries"]] == ["c1", "c2"], "rolling"
    metrics = doc["entries"][-1]["metrics"]
    assert metrics["small/fault.speedup"] == {"value": 8.6, "unit": "x"}
    assert metrics["small/packed-fault@K8.packed_s"]["unit"] == "s"


def test_pytest_benchmark_normalizer():
    raw = {"benchmarks": [{"name": "test_x", "stats": {"mean": 0.0125}}]}
    metrics = trend._normalize_pytest(raw)
    assert metrics == {"test_x.mean": {"value": 0.0125, "unit": "s"}}


def test_check_rejects_malformed_snapshots():
    good = {
        "schema": trend.SCHEMA,
        "bench": "sim",
        "source": "sim-benchmark.json",
        "entries": [
            {"commit": None, "metrics": {"m": {"value": 1.0, "unit": "x"}}}
        ],
    }
    trend.validate_snapshot(good, "good")
    for mutate, match in [
        (lambda d: d.update(schema="v0"), "schema"),
        (lambda d: d.update(bench="nope"), "unknown bench"),
        (lambda d: d.update(entries=[]), "non-empty"),
        (
            lambda d: d["entries"][0]["metrics"].update(
                bad={"value": float("nan"), "unit": "x"}
            ),
            "finite",
        ),
        (
            lambda d: d["entries"][0]["metrics"].update(
                bad={"value": 1.0, "unit": "furlongs"}
            ),
            "unit",
        ),
    ]:
        doc = json.loads(json.dumps(good))
        mutate(doc)
        with pytest.raises(ValueError, match=match):
            trend.validate_snapshot(doc, "bad")


def test_update_refuses_cross_bench_snapshot(tmp_path):
    src = tmp_path / "sim-benchmark.json"
    src.write_text(json.dumps(SIM_RAW))
    out = tmp_path / "BENCH_SIM.json"
    trend.update_snapshot("sim", src, out_path=out)
    raw = {"benchmarks": [{"name": "t", "stats": {"mean": 1.0}}]}
    (tmp_path / "benchmark.json").write_text(json.dumps(raw))
    with pytest.raises(ValueError, match="tracks bench"):
        trend.update_snapshot("perf", tmp_path / "benchmark.json", out_path=out)
