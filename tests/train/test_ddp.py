"""Deterministic data-parallel training (repro.runtime.ddp + trainer).

The ISSUE acceptance: W-worker DDP runs reproduce the sequential
trainer's final parameters bitwise at W ∈ {1, 2, 4}, and an interrupted
W-worker run resumed from its checkpoint matches the uninterrupted run
bitwise — including resuming on a *different* worker count.
"""

import numpy as np
import pytest

from repro.models.base import ModelConfig
from repro.models.registry import make_model
from repro.nn.serialize import load_checkpoint, save_checkpoint
from repro.runtime.ddp import (
    DdpError,
    DdpGradExecutor,
    reduce_gradients,
    tree_reduce,
)
from repro.train.trainer import TrainConfig, Trainer

from tests.conftest import build_dataset_cached

CFG = ModelConfig(hidden=10, iterations=2, seed=0)


@pytest.fixture(scope="module")
def dataset():
    # Same build as tests/train/test_trainer.py — shared session-wide.
    return build_dataset_cached("iscas89", 4, 6, 40, 1)


def fresh_model():
    return make_model("deepseq", CFG, "dual_attention")


def state_of(model):
    return {k: v.copy() for k, v in model.state_dict().items()}


def assert_states_equal(a, b, context=""):
    assert a.keys() == b.keys()
    for k in a:
        assert np.array_equal(a[k], b[k]), f"{context}: mismatch at {k}"


class TestTreeReduce:
    def test_association_is_pinned_by_position(self):
        rng = np.random.default_rng(0)
        a, b, c, d, e = (rng.standard_normal(7) for _ in range(5))
        # The tree sums adjacent pairs per round, odd tail carried.
        assert np.array_equal(tree_reduce([a, b, c]), (a + b) + c)
        assert np.array_equal(tree_reduce([a, b, c, d]), (a + b) + (c + d))
        assert np.array_equal(
            tree_reduce([a, b, c, d, e]), ((a + b) + (c + d)) + e
        )

    def test_differs_from_left_fold_on_adversarial_floats(self):
        # Sanity that the tests below are meaningful: tree and left-fold
        # orders genuinely disagree in float64, so bitwise equality across
        # worker counts can only come from the pinned tree.
        rng = np.random.default_rng(1)
        xs = [rng.standard_normal(64) * 10.0 ** rng.integers(-8, 8) for _ in range(7)]
        fold = xs[0]
        for x in xs[1:]:
            fold = fold + x
        assert not np.array_equal(tree_reduce(xs), fold)

    def test_single_element_returned_as_is(self):
        a = np.ones(3)
        assert tree_reduce([a]) is a

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            tree_reduce([])

    def test_reduce_gradients_handles_absent_entries(self):
        g = np.full(4, 2.0)
        per_batch = [[g, None], [g, g], [None, g]]
        reduced = reduce_gradients(per_batch)
        assert np.array_equal(reduced[0], g + g)
        assert np.array_equal(reduced[1], g + g)
        all_absent = reduce_gradients([[None], [None]])
        assert all_absent == [None]

    def test_reduce_gradients_empty_rejected(self):
        with pytest.raises(ValueError):
            reduce_gradients([])


class TestDdpDifferential:
    @staticmethod
    def run(dataset, workers, **overrides):
        cfg = dict(
            epochs=2, lr=5e-3, batch_size=1, grad_accum=4,
            seed=3, train_workers=workers,
        )
        cfg.update(overrides)
        model = fresh_model()
        hist = Trainer(TrainConfig(**cfg)).train(model, dataset)
        return state_of(model), hist

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_ddp_reproduces_sequential_bitwise(self, dataset, workers):
        sequential, seq_hist = self.run(dataset, 0)
        sharded, ddp_hist = self.run(dataset, workers)
        assert_states_equal(sequential, sharded, f"W={workers}")
        # Epoch stats accumulate in batch-position order on both paths,
        # so even the reported loss floats are identical.
        assert [(h.loss, h.loss_tr, h.loss_lg) for h in seq_hist] == [
            (h.loss, h.loss_tr, h.loss_lg) for h in ddp_hist
        ]

    def test_more_workers_than_group_is_consistent(self, dataset):
        # Idle ranks (W > grad_accum) must not perturb the reduction.
        sequential, _ = self.run(dataset, 0, grad_accum=2)
        sharded, _ = self.run(dataset, 3, grad_accum=2)
        assert_states_equal(sequential, sharded, "W=3,accum=2")


class TestDdpResume:
    def test_interrupted_ddp_resume_matches_uninterrupted(
        self, tmp_path, dataset
    ):
        common = dict(
            epochs=4, lr=5e-3, batch_size=1, grad_accum=4,
            seed=3, train_workers=2,
        )
        uninterrupted = fresh_model()
        Trainer(TrainConfig(**common)).train(uninterrupted, dataset)

        path = str(tmp_path / "ddp.npz")
        interrupted = fresh_model()
        part1 = Trainer(
            TrainConfig(**common, checkpoint_path=path, stop_after=2)
        ).train(interrupted, dataset)
        assert [h.epoch for h in part1] == [0, 1]
        part2 = Trainer(
            TrainConfig(**common, checkpoint_path=path, resume=True)
        ).train(interrupted, dataset)
        assert [h.epoch for h in part2] == [0, 1, 2, 3]
        assert_states_equal(
            state_of(uninterrupted), state_of(interrupted), "resume W=2"
        )

    def test_resume_on_different_worker_count_stays_bitwise(
        self, tmp_path, dataset
    ):
        # The update is worker-count-independent, so a checkpoint written
        # under W=2 must resume bitwise-identically under W=0 (and vice
        # versa) — the shard RNG streams are re-derived, not restored.
        common = dict(epochs=4, lr=5e-3, batch_size=1, grad_accum=4, seed=3)
        uninterrupted = fresh_model()
        Trainer(TrainConfig(**common, train_workers=0)).train(
            uninterrupted, dataset
        )

        path = str(tmp_path / "switch.npz")
        switched = fresh_model()
        Trainer(
            TrainConfig(
                **common, train_workers=2, checkpoint_path=path, stop_after=2
            )
        ).train(switched, dataset)
        Trainer(
            TrainConfig(
                **common, train_workers=0, checkpoint_path=path, resume=True
            )
        ).train(switched, dataset)
        assert_states_equal(
            state_of(uninterrupted), state_of(switched), "W=2 → W=0 resume"
        )


class TestShardRngCheckpoint:
    def test_round_trip_continues_streams(self, tmp_path):
        model = fresh_model()
        rngs = [np.random.default_rng(s) for s in (7, 8, 9)]
        for g in rngs:
            g.standard_normal(5)  # advance past the seed state
        path = tmp_path / "shards.npz"
        save_checkpoint(path, model, epoch=0, shard_rngs=rngs)
        ckpt = load_checkpoint(path)
        restored = [np.random.default_rng(0) for _ in range(3)]
        ckpt.restore_shard_rngs(restored)
        for orig, back in zip(rngs, restored):
            assert np.array_equal(
                orig.standard_normal(4), back.standard_normal(4)
            )

    def test_count_mismatch_rejected(self, tmp_path):
        model = fresh_model()
        path = tmp_path / "shards.npz"
        save_checkpoint(
            path, model, epoch=0,
            shard_rngs=[np.random.default_rng(0), np.random.default_rng(1)],
        )
        ckpt = load_checkpoint(path)
        with pytest.raises(ValueError, match="shard RNG"):
            ckpt.restore_shard_rngs([np.random.default_rng(0)])

    def test_checkpoint_without_shard_state_rejects_restore(self, tmp_path):
        model = fresh_model()
        path = tmp_path / "bare.npz"
        save_checkpoint(path, model, epoch=0)
        ckpt = load_checkpoint(path)
        assert ckpt.shard_rng_states is None
        with pytest.raises(ValueError, match="no shard RNG"):
            ckpt.restore_shard_rngs([np.random.default_rng(0)])


class TestExecutorLifecycle:
    def test_closed_executor_rejects_work_and_close_is_idempotent(
        self, dataset
    ):
        model = fresh_model()
        ex = DdpGradExecutor(
            model, [[dataset[0]], [dataset[1]]], workers=1, grad_accum=2
        )
        try:
            results = ex.run_group([(0, 0.5), (1, 0.5)])
            assert len(results) == 2
        finally:
            ex.close()
        ex.close()  # idempotent
        with pytest.raises(DdpError):
            ex.run_group([(0, 1.0)])

    def test_dead_worker_raises_typed_error(self, dataset):
        model = fresh_model()
        ex = DdpGradExecutor(model, [[dataset[0]]], workers=1)
        try:
            ex._procs[0].kill()
            ex._procs[0].join(timeout=10.0)
            with pytest.raises(DdpError):
                ex.run_group([(0, 1.0)])
        finally:
            ex.close()

    def test_worker_count_validated(self, dataset):
        with pytest.raises(ValueError):
            DdpGradExecutor(fresh_model(), [[dataset[0]]], workers=0)
        with pytest.raises(ValueError):
            Trainer(TrainConfig(train_workers=-1)).train(
                fresh_model(), dataset
            )
