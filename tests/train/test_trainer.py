"""Tests for the training loop and metrics (repro.train)."""

import numpy as np
import pytest

from repro.models.base import ModelConfig
from repro.models.registry import make_model
from repro.train.metrics import EvalMetrics, avg_prediction_error
from repro.train.trainer import TrainConfig, Trainer, evaluate

from tests.conftest import build_dataset_cached

CFG = ModelConfig(hidden=12, iterations=2, seed=0)


@pytest.fixture(scope="module")
def dataset():
    # Same build as tests/train/test_checkpoint.py — shared session-wide.
    return build_dataset_cached("iscas89", 4, 6, 40, 1)


class TestMetrics:
    def test_avg_prediction_error_definition(self):
        pred = np.array([0.2, 0.8])
        target = np.array([0.0, 1.0])
        assert avg_prediction_error(pred, target) == pytest.approx(0.2)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            avg_prediction_error(np.zeros(3), np.zeros(4))

    def test_2d_supervision_averages_components(self):
        pred = np.array([[0.0, 0.4]])
        target = np.array([[0.2, 0.0]])
        assert avg_prediction_error(pred, target) == pytest.approx(0.3)

    def test_eval_metrics_row(self):
        m = EvalMetrics(pe_tr=0.1, pe_lg=0.2, num_circuits=2, num_nodes=10)
        assert "0.100" in m.row("model")


class TestTrainer:
    def test_loss_decreases(self, dataset):
        model = make_model("deepseq", CFG, "dual_attention")
        hist = Trainer(TrainConfig(epochs=8, lr=5e-3, batch_size=2)).train(
            model, dataset
        )
        assert len(hist) == 8
        assert hist[-1].loss < hist[0].loss

    def test_loss_components_recorded(self, dataset):
        model = make_model("dag_convgnn", CFG, "conv_sum")
        hist = Trainer(TrainConfig(epochs=2, lr=1e-3)).train(model, dataset)
        for h in hist:
            assert h.loss == pytest.approx(h.loss_tr + h.loss_lg, rel=1e-9)

    def test_empty_dataset_rejected(self):
        model = make_model("deepseq", CFG)
        with pytest.raises(ValueError):
            Trainer().train(model, [])

    def test_batching_merges_circuits(self, dataset):
        trainer = Trainer(TrainConfig(batch_size=2, seed=0))
        batches = trainer._make_batches(dataset, np.random.default_rng(0))
        assert len(batches) == 2
        assert sum(b.num_nodes for b in batches) == sum(
            s.num_nodes for s in dataset
        )

    def test_batch_size_one_keeps_samples(self, dataset):
        trainer = Trainer(TrainConfig(batch_size=1))
        batches = trainer._make_batches(dataset, np.random.default_rng(0))
        assert len(batches) == len(dataset)

    def test_loss_weights(self, dataset):
        model = make_model("dag_convgnn", CFG, "conv_sum")
        hist = Trainer(
            TrainConfig(epochs=1, lr=0.0, tr_weight=2.0, lg_weight=0.5)
        ).train(model, dataset)
        h = hist[0]
        assert h.loss == pytest.approx(2.0 * h.loss_tr + 0.5 * h.loss_lg, rel=1e-9)

    def test_training_improves_eval(self, dataset):
        model = make_model("deepseq", CFG, "dual_attention")
        before = evaluate(model, dataset)
        Trainer(TrainConfig(epochs=10, lr=5e-3, batch_size=2)).train(
            model, dataset
        )
        after = evaluate(model, dataset)
        assert after.pe_lg < before.pe_lg


class TestEvaluate:
    def test_counts(self, dataset):
        model = make_model("deepseq", CFG)
        ev = evaluate(model, dataset)
        assert ev.num_circuits == len(dataset)
        assert ev.num_nodes == sum(s.num_nodes for s in dataset)
        assert 0 <= ev.pe_tr <= 1 and 0 <= ev.pe_lg <= 1

    def test_does_not_leak_predictor_threads(self, dataset):
        # evaluate() builds a BatchedPredictor per call; left unclosed it
        # leaks the predictor's deadline-timer daemon thread, one per
        # validation epoch, for the life of the process.
        import threading

        model = make_model("deepseq", CFG)
        evaluate(model, dataset)  # warm any lazily-started machinery
        baseline = threading.active_count()
        for _ in range(5):
            evaluate(model, dataset)
        assert threading.active_count() <= baseline
