"""Tests for dataset building (repro.train.dataset)."""

import numpy as np
import pytest

from repro.circuit.benchmarks import family_subcircuits
from repro.sim.faults import FaultConfig
from repro.sim.logicsim import SimConfig, simulate
from repro.sim.workload import Workload
from repro.train.dataset import (
    build_dataset,
    build_reliability_dataset,
    merge_samples,
)

SIM = SimConfig(cycles=40, streams=64, seed=1)


@pytest.fixture(scope="module")
def circuits():
    return family_subcircuits("iscas89", 3, seed=4)


class TestBuildDataset:
    def test_one_sample_per_circuit(self, circuits):
        ds = build_dataset(circuits, SIM, seed=0)
        assert len(ds) == len(circuits)
        for sample, nl in zip(ds, circuits):
            assert sample.num_nodes == len(nl)
            assert sample.name == nl.name

    def test_labels_match_direct_simulation(self, circuits):
        ds = build_dataset(circuits, SIM, seed=0)
        s = ds[0]
        redo = simulate(circuits[0], s.workload, SIM)
        assert (s.target_lg == redo.logic_prob).all()
        assert (s.target_tr == redo.transition_prob).all()

    def test_label_shapes_and_ranges(self, circuits):
        for s in build_dataset(circuits, SIM, seed=0):
            assert s.target_tr.shape == (s.num_nodes, 2)
            assert s.target_lg.shape == (s.num_nodes,)
            assert (s.target_tr >= 0).all() and (s.target_tr <= 1).all()

    def test_distinct_workloads_per_circuit(self, circuits):
        ds = build_dataset(circuits, SIM, seed=0)
        probs = [tuple(np.round(s.workload.pi_probs, 6)) for s in ds]
        assert len(set(probs)) == len(ds)

    def test_explicit_workloads_used(self, circuits):
        wls = [
            Workload(np.full(len(nl.pis), 0.5), f"w{k}", seed=k)
            for k, nl in enumerate(circuits)
        ]
        ds = build_dataset(circuits, SIM, seed=0, workloads=wls)
        for s, wl in zip(ds, wls):
            assert s.workload is wl

    def test_sim_result_stashed(self, circuits):
        ds = build_dataset(circuits, SIM, seed=0)
        assert "sim" in ds[0].extras

    def test_keep_sim_false_gives_lean_samples(self, circuits):
        lean = build_dataset(circuits, SIM, seed=0, keep_sim=False)
        full = build_dataset(circuits, SIM, seed=0)
        for a, b in zip(lean, full):
            assert a.extras == {}
            assert (a.target_tr == b.target_tr).all()
            assert (a.target_lg == b.target_lg).all()

    def test_dataset_seeds_do_not_alias(self, circuits):
        # Regression: with the affine per-circuit seed derivation,
        # different dataset seeds could hand two circuits the same
        # workload stream.  Spawned seeds never collide across datasets.
        from repro.train.dataset import dataset_workloads

        seeds = set()
        for ds_seed in range(4):
            for wl in dataset_workloads(circuits, ds_seed):
                assert wl.seed not in seeds
                seeds.add(wl.seed)

    def test_workload_count_mismatch_rejected(self, circuits):
        from repro.train.dataset import dataset_workloads

        with pytest.raises(ValueError):
            dataset_workloads(circuits, 0, workloads=[])


class TestReliabilityDataset:
    def test_error_prob_targets(self, circuits):
        ds = build_reliability_dataset(
            circuits[:2], SIM, FaultConfig(fault_rate=1e-2, per_pattern=False), seed=0
        )
        for s in ds:
            assert s.target_tr.shape == (s.num_nodes, 2)
            assert s.target_tr.max() > 0.0, "faults must produce errors"
            assert "faults" in s.extras

    def test_lg_target_is_fault_free(self, circuits):
        # One episode == the standalone-simulate schedule, so the golden
        # stats read off the lockstep run must equal a direct fault-free
        # simulation bitwise (no second simulation needed to label LG).
        fault = FaultConfig(episode_cycles=SIM.cycles)
        ds = build_reliability_dataset(circuits[:1], SIM, fault, seed=0)
        s = ds[0]
        golden = simulate(circuits[0], s.workload, SIM)
        assert (s.target_lg == golden.logic_prob).all()

    def test_no_redundant_fault_free_simulation(self, circuits, monkeypatch):
        # Regression: build_reliability_dataset used to run a second full
        # fault-free simulation per circuit; the golden activity now comes
        # off the lockstep run inside simulate_with_faults.
        import repro.train.dataset as dataset_mod

        def boom(*args, **kwargs):
            raise AssertionError("build_reliability_dataset must not re-simulate")

        monkeypatch.setattr(dataset_mod, "simulate", boom)
        ds = build_reliability_dataset(circuits[:1], SIM, FaultConfig(), seed=0)
        assert (ds[0].target_lg >= 0).all()

    def test_keep_sim_false_drops_extras(self, circuits):
        ds = build_reliability_dataset(
            circuits[:1], SIM, FaultConfig(), seed=0, keep_sim=False
        )
        assert ds[0].extras == {}


class TestMergeSamples:
    def test_single_passthrough(self, circuits):
        ds = build_dataset(circuits[:1], SIM, seed=0)
        assert merge_samples(ds) is ds[0]

    def test_merged_sizes(self, circuits):
        ds = build_dataset(circuits, SIM, seed=0)
        merged = merge_samples(ds)
        total = sum(s.num_nodes for s in ds)
        assert merged.num_nodes == total
        assert merged.target_tr.shape == (total, 2)
        assert merged.target_lg.shape == (total,)

    def test_targets_concatenate_in_member_order(self, circuits):
        ds = build_dataset(circuits, SIM, seed=0)
        merged = merge_samples(ds)
        offset = 0
        for s in ds:
            np.testing.assert_array_equal(
                merged.target_lg[offset : offset + s.num_nodes], s.target_lg
            )
            offset += s.num_nodes

    def test_workload_concatenates(self, circuits):
        ds = build_dataset(circuits, SIM, seed=0)
        merged = merge_samples(ds)
        expected = np.concatenate([s.workload.pi_probs for s in ds])
        assert (merged.workload.pi_probs == expected).all()

    def test_merged_graph_valid(self, circuits):
        ds = build_dataset(circuits, SIM, seed=0)
        merged = merge_samples(ds)
        merged.graph.netlist.validate()
        assert merged.extras["members"] == [s.name for s in ds]
