"""Tests for dataset building (repro.train.dataset)."""

import numpy as np
import pytest

from repro.circuit.benchmarks import family_subcircuits
from repro.sim.faults import FaultConfig
from repro.sim.logicsim import SimConfig, simulate
from repro.sim.workload import Workload
from repro.train.dataset import (
    build_dataset,
    build_reliability_dataset,
    merge_samples,
)

SIM = SimConfig(cycles=40, streams=64, seed=1)


@pytest.fixture(scope="module")
def circuits():
    return family_subcircuits("iscas89", 3, seed=4)


class TestBuildDataset:
    def test_one_sample_per_circuit(self, circuits):
        ds = build_dataset(circuits, SIM, seed=0)
        assert len(ds) == len(circuits)
        for sample, nl in zip(ds, circuits):
            assert sample.num_nodes == len(nl)
            assert sample.name == nl.name

    def test_labels_match_direct_simulation(self, circuits):
        ds = build_dataset(circuits, SIM, seed=0)
        s = ds[0]
        redo = simulate(circuits[0], s.workload, SIM)
        assert (s.target_lg == redo.logic_prob).all()
        assert (s.target_tr == redo.transition_prob).all()

    def test_label_shapes_and_ranges(self, circuits):
        for s in build_dataset(circuits, SIM, seed=0):
            assert s.target_tr.shape == (s.num_nodes, 2)
            assert s.target_lg.shape == (s.num_nodes,)
            assert (s.target_tr >= 0).all() and (s.target_tr <= 1).all()

    def test_distinct_workloads_per_circuit(self, circuits):
        ds = build_dataset(circuits, SIM, seed=0)
        probs = [tuple(np.round(s.workload.pi_probs, 6)) for s in ds]
        assert len(set(probs)) == len(ds)

    def test_explicit_workloads_used(self, circuits):
        wls = [
            Workload(np.full(len(nl.pis), 0.5), f"w{k}", seed=k)
            for k, nl in enumerate(circuits)
        ]
        ds = build_dataset(circuits, SIM, seed=0, workloads=wls)
        for s, wl in zip(ds, wls):
            assert s.workload is wl

    def test_sim_result_stashed(self, circuits):
        ds = build_dataset(circuits, SIM, seed=0)
        assert "sim" in ds[0].extras


class TestReliabilityDataset:
    def test_error_prob_targets(self, circuits):
        ds = build_reliability_dataset(
            circuits[:2], SIM, FaultConfig(fault_rate=1e-2, per_pattern=False), seed=0
        )
        for s in ds:
            assert s.target_tr.shape == (s.num_nodes, 2)
            assert s.target_tr.max() > 0.0, "faults must produce errors"
            assert "faults" in s.extras

    def test_lg_target_is_fault_free(self, circuits):
        ds = build_reliability_dataset(circuits[:1], SIM, FaultConfig(), seed=0)
        s = ds[0]
        golden = simulate(circuits[0], s.workload, SIM)
        assert (s.target_lg == golden.logic_prob).all()


class TestMergeSamples:
    def test_single_passthrough(self, circuits):
        ds = build_dataset(circuits[:1], SIM, seed=0)
        assert merge_samples(ds) is ds[0]

    def test_merged_sizes(self, circuits):
        ds = build_dataset(circuits, SIM, seed=0)
        merged = merge_samples(ds)
        total = sum(s.num_nodes for s in ds)
        assert merged.num_nodes == total
        assert merged.target_tr.shape == (total, 2)
        assert merged.target_lg.shape == (total,)

    def test_targets_concatenate_in_member_order(self, circuits):
        ds = build_dataset(circuits, SIM, seed=0)
        merged = merge_samples(ds)
        offset = 0
        for s in ds:
            np.testing.assert_array_equal(
                merged.target_lg[offset : offset + s.num_nodes], s.target_lg
            )
            offset += s.num_nodes

    def test_workload_concatenates(self, circuits):
        ds = build_dataset(circuits, SIM, seed=0)
        merged = merge_samples(ds)
        expected = np.concatenate([s.workload.pi_probs for s in ds])
        assert (merged.workload.pi_probs == expected).all()

    def test_merged_graph_valid(self, circuits):
        ds = build_dataset(circuits, SIM, seed=0)
        merged = merge_samples(ds)
        merged.graph.netlist.validate()
        assert merged.extras["members"] == [s.name for s in ds]
