"""Trainer determinism: schedules, accumulation, checkpoint-resume."""

import numpy as np
import pytest

from repro.models.base import ModelConfig
from repro.models.registry import make_model
from repro.nn.optim import Adam
from repro.nn.serialize import load_checkpoint, save_checkpoint
from repro.train.trainer import TrainConfig, Trainer

from tests.conftest import build_dataset_cached

CFG = ModelConfig(hidden=10, iterations=2, seed=0)


@pytest.fixture(scope="module")
def dataset():
    # Same build as tests/train/test_trainer.py — shared session-wide.
    return build_dataset_cached("iscas89", 4, 6, 40, 1)


def params_of(model):
    return [(name, p.data.copy()) for name, p in model.named_parameters()]


class TestCheckpointFile:
    def test_round_trip(self, tmp_path, dataset):
        model = make_model("deepseq", CFG, "dual_attention")
        opt = Adam(model.parameters(), lr=1e-3)
        Trainer(TrainConfig(epochs=1, lr=1e-3)).train(model, dataset, opt)
        rng = np.random.default_rng(42)
        rng.integers(0, 10, size=5)  # advance the stream
        path = tmp_path / "ck.npz"
        save_checkpoint(
            path, model, opt, epoch=3, rng=rng,
            extra={"history": np.arange(6.0)},
        )

        fresh = make_model("deepseq", CFG, "dual_attention")
        fresh_opt = Adam(fresh.parameters(), lr=1e-3)
        ckpt = load_checkpoint(path, fresh, fresh_opt)
        assert ckpt.epoch == 3
        for (n1, p1), (n2, p2) in zip(
            model.named_parameters(), fresh.named_parameters()
        ):
            assert n1 == n2 and np.array_equal(p1.data, p2.data)
        assert fresh_opt._t == opt._t
        for m1, m2 in zip(opt._m, fresh_opt._m):
            assert np.array_equal(m1, m2)
        # Restored RNG continues the exact stream.
        rng2 = np.random.default_rng(0)
        ckpt.restore_rng(rng2)
        assert np.array_equal(
            rng.integers(0, 1000, size=8), rng2.integers(0, 1000, size=8)
        )
        assert np.array_equal(ckpt.extra["history"], np.arange(6.0))

    def test_saves_to_exact_path_without_npz_suffix(self, tmp_path, dataset):
        # np.savez appends '.npz' to bare paths; the checkpoint writer must
        # honor the configured name exactly or resume never finds it.
        model = make_model("deepseq", CFG, "dual_attention")
        path = tmp_path / "deepseq.ckpt"
        save_checkpoint(path, model, epoch=0)
        assert path.exists()
        assert not (tmp_path / "deepseq.ckpt.npz").exists()
        assert not (tmp_path / "deepseq.ckpt.tmp").exists()
        assert load_checkpoint(path, make_model("deepseq", CFG)).epoch == 0

    def test_save_replaces_previous_checkpoint_atomically(
        self, tmp_path, dataset
    ):
        model = make_model("deepseq", CFG, "dual_attention")
        path = tmp_path / "ck.npz"
        save_checkpoint(path, model, epoch=1)
        save_checkpoint(path, model, epoch=2)
        assert load_checkpoint(path).epoch == 2
        assert list(tmp_path.iterdir()) == [path]  # no tmp residue

    def test_concurrent_writer_tmp_not_clobbered(self, tmp_path, dataset):
        # The temp file must come from mkstemp, not a fixed '<name>.tmp'
        # sibling: with a fixed name, two concurrent writers (data-parallel
        # trainers, table drivers sharing a checkpoint dir) interleave
        # bytes into the same temp file before the rename.  A pre-existing
        # '<name>.tmp' — another writer mid-save — must survive untouched.
        model = make_model("deepseq", CFG, "dual_attention")
        path = tmp_path / "shared.npz"
        other_writer = tmp_path / "shared.npz.tmp"
        other_writer.write_bytes(b"half-written by someone else")
        save_checkpoint(path, model, epoch=7)
        assert other_writer.read_bytes() == b"half-written by someone else"
        assert load_checkpoint(path).epoch == 7
        # ...and this writer's own temp file never lingers.
        assert sorted(tmp_path.iterdir()) == [path, other_writer]

    def test_optimizer_state_mismatch_rejected(self, dataset):
        model = make_model("deepseq", CFG, "dual_attention")
        opt = Adam(model.parameters(), lr=1e-3)
        with pytest.raises(KeyError):
            opt.load_state_dict({})


class TestResumeDeterminism:
    @pytest.mark.parametrize(
        "schedule,grad_accum", [("constant", 1), ("cosine", 2)]
    )
    def test_resume_reproduces_uninterrupted_run(
        self, tmp_path, dataset, schedule, grad_accum
    ):
        """The ISSUE acceptance: interrupt mid-schedule, resume, and land
        on parameters bitwise identical to the uninterrupted run."""
        common = dict(
            epochs=6, lr=5e-3, batch_size=2, seed=3,
            schedule=schedule, grad_accum=grad_accum,
        )
        uninterrupted = make_model("deepseq", CFG, "dual_attention")
        full_hist = Trainer(TrainConfig(**common)).train(
            uninterrupted, dataset
        )

        path = str(tmp_path / "resume.npz")
        interrupted = make_model("deepseq", CFG, "dual_attention")
        part1 = Trainer(
            TrainConfig(**common, checkpoint_path=path, stop_after=2)
        ).train(interrupted, dataset)
        assert [h.epoch for h in part1] == [0, 1]
        part2 = Trainer(
            TrainConfig(**common, checkpoint_path=path, resume=True)
        ).train(interrupted, dataset)
        assert [h.epoch for h in part2] == [0, 1, 2, 3, 4, 5]

        for (n1, p1), (n2, p2) in zip(
            uninterrupted.named_parameters(), interrupted.named_parameters()
        ):
            assert np.array_equal(p1.data, p2.data), n1
        # The stitched history matches the uninterrupted one too.
        for a, b in zip(full_hist, part2):
            assert a.epoch == b.epoch
            assert a.loss == b.loss
            assert a.lr == b.lr

    def test_resume_without_checkpoint_starts_fresh(self, tmp_path, dataset):
        model = make_model("deepseq", CFG, "dual_attention")
        hist = Trainer(
            TrainConfig(
                epochs=2, lr=1e-3,
                checkpoint_path=str(tmp_path / "none.npz"), resume=True,
            )
        ).train(model, dataset)
        assert [h.epoch for h in hist] == [0, 1]


class TestSchedules:
    def test_cosine_anneals_lr(self, dataset):
        model = make_model("deepseq", CFG, "dual_attention")
        hist = Trainer(
            TrainConfig(epochs=4, lr=1e-2, schedule="cosine", lr_min=1e-4)
        ).train(model, dataset)
        lrs = [h.lr for h in hist]
        assert lrs[0] == pytest.approx(1e-2)
        assert lrs[-1] == pytest.approx(1e-4)
        assert all(a > b for a, b in zip(lrs, lrs[1:]))

    def test_step_schedule_decays(self, dataset):
        model = make_model("deepseq", CFG, "dual_attention")
        hist = Trainer(
            TrainConfig(
                epochs=4, lr=1e-2, schedule="step",
                lr_step_size=2, lr_gamma=0.1,
            )
        ).train(model, dataset)
        assert [h.lr for h in hist] == pytest.approx(
            [1e-2, 1e-2, 1e-3, 1e-3]
        )

    def test_unknown_schedule_rejected(self, dataset):
        model = make_model("deepseq", CFG, "dual_attention")
        with pytest.raises(ValueError):
            Trainer(TrainConfig(epochs=1, schedule="warmup")).train(
                model, dataset
            )


class TestEarlyStopping:
    def test_stops_on_stagnant_loss(self, dataset):
        # lr=0 cannot improve anything: patience expires immediately.
        model = make_model("deepseq", CFG, "dual_attention")
        hist = Trainer(
            TrainConfig(epochs=10, lr=0.0, early_stop_patience=2)
        ).train(model, dataset)
        assert len(hist) == 3  # first epoch sets best, two bad epochs stop

    def test_early_stopped_run_does_not_resume_training(
        self, tmp_path, dataset
    ):
        """Re-invoking a run that already early-stopped must be a no-op:
        the stop is persisted, so parameters stay bitwise frozen."""
        path = str(tmp_path / "stopped.npz")
        cfg = TrainConfig(
            epochs=10, lr=0.0, early_stop_patience=2, checkpoint_path=path,
        )
        model = make_model("deepseq", CFG, "dual_attention")
        first = Trainer(cfg).train(model, dataset)
        assert len(first) == 3
        frozen = params_of(model)
        again = Trainer(
            TrainConfig(
                epochs=10, lr=1e-2, early_stop_patience=2,
                checkpoint_path=path, resume=True,
            )
        ).train(model, dataset)
        assert [h.epoch for h in again] == [h.epoch for h in first]
        for (name, before), (_, p) in zip(frozen, model.named_parameters()):
            assert np.array_equal(before, p.data), name

    def test_monitors_validation_error_when_given(self, dataset):
        model = make_model("deepseq", CFG, "dual_attention")
        hist = Trainer(
            TrainConfig(epochs=3, lr=5e-3, early_stop_patience=5)
        ).train(model, dataset[:3], val_dataset=dataset[3:])
        assert all(h.val_pe is not None for h in hist)

    def test_grad_accum_trains(self, dataset):
        model = make_model("deepseq", CFG, "dual_attention")
        hist = Trainer(
            TrainConfig(epochs=8, lr=5e-3, batch_size=1, grad_accum=4)
        ).train(model, dataset)
        assert hist[-1].loss < hist[0].loss
