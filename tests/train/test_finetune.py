"""Tests for fine-tuning flows (repro.train.finetune)."""

import numpy as np
import pytest

from repro.models.base import ModelConfig
from repro.models.grannite import Grannite
from repro.models.registry import make_model
from repro.sim.faults import FaultConfig
from repro.sim.logicsim import SimConfig
from repro.train.finetune import (
    FinetuneConfig,
    finetune_for_reliability,
    finetune_grannite,
    finetune_on_workloads,
    workload_suite,
)

CFG = ModelConfig(hidden=12, iterations=2, seed=0)
SIM = SimConfig(cycles=30, streams=64, seed=1)


from tests.conftest import build_subcircuits


@pytest.fixture(scope="module")
def circuit():
    return build_subcircuits("opencores", 1, 8)[0]


class TestWorkloadSuite:
    def test_count_and_distinctness(self, circuit):
        wls = workload_suite(circuit, 4, seed=0)
        assert len(wls) == 4
        probs = [tuple(np.round(w.pi_probs, 6)) for w in wls]
        assert len(set(probs)) == 4

    def test_deterministic(self, circuit):
        a = workload_suite(circuit, 3, seed=5)
        b = workload_suite(circuit, 3, seed=5)
        for x, y in zip(a, b):
            assert (x.pi_probs == y.pi_probs).all()


class TestFinetuneOnWorkloads:
    def test_returns_dataset_and_updates_model(self, circuit):
        model = make_model("deepseq", CFG, "dual_attention")
        before = model.state_dict()
        cfg = FinetuneConfig(num_workloads=2, epochs=2, lr=5e-3, sim=SIM)
        ds = finetune_on_workloads(model, circuit, cfg)
        assert len(ds) == 2
        after = model.state_dict()
        changed = any(
            not np.allclose(before[k], after[k]) for k in before
        )
        assert changed, "fine-tuning must move parameters"

    def test_improves_fit_on_finetune_workloads(self, circuit):
        from repro.train.trainer import evaluate

        model = make_model("deepseq", CFG, "dual_attention")
        cfg = FinetuneConfig(num_workloads=3, epochs=6, lr=5e-3, sim=SIM)
        # Baseline error on the same workloads before fine-tuning:
        from repro.train.dataset import build_dataset

        wls = workload_suite(circuit, 3, seed=cfg.seed)
        ds = build_dataset([circuit] * 3, SIM, seed=cfg.seed, workloads=wls)
        before = evaluate(model, ds)
        finetune_on_workloads(model, circuit, cfg)
        after = evaluate(model, ds)
        assert after.pe_lg < before.pe_lg


class TestFinetuneGrannite:
    def test_updates_parameters(self, circuit):
        model = Grannite(ModelConfig(hidden=12, aggregator="attention", seed=0))
        before = model.state_dict()
        cfg = FinetuneConfig(num_workloads=2, epochs=2, lr=5e-3, sim=SIM)
        ds = finetune_grannite(model, circuit, cfg)
        assert len(ds) == 2
        after = model.state_dict()
        assert any(not np.allclose(before[k], after[k]) for k in before)


class TestFinetuneForReliability:
    def test_produces_error_prob_dataset(self, circuit):
        model = make_model("deepseq", CFG, "dual_attention")
        cfg = FinetuneConfig(epochs=2, lr=5e-3, sim=SIM)
        ds = finetune_for_reliability(
            model,
            [circuit],
            cfg,
            fault_config=FaultConfig(fault_rate=1e-2, per_pattern=False),
        )
        assert len(ds) == 1
        assert ds[0].target_tr.max() > 0.0
