"""Tests for prediction-quality analysis (repro.train.analysis)."""

import numpy as np
import pytest

from repro.models.base import ModelConfig
from repro.models.registry import make_model
from repro.train.analysis import (
    analyze_model,
    calibration_curve,
    error_by_gate_type,
    error_by_level,
)

from tests.conftest import build_dataset_cached


@pytest.fixture(scope="module")
def setup():
    samples = build_dataset_cached("iscas89", 3, 50, 40, 1)
    model = make_model(
        "deepseq", ModelConfig(hidden=8, iterations=2, seed=0), "dual_attention"
    )
    return model, samples


class TestBreakdowns:
    def test_gate_type_groups(self, setup):
        model, samples = setup
        bd = error_by_gate_type(model, samples)
        assert bd.group_names == ["PI", "AND", "NOT", "DFF"]
        assert bd.counts.sum() == sum(s.num_nodes for s in samples)
        assert (bd.pe_tr >= 0).all() and (bd.pe_tr <= 1).all()

    def test_level_groups_partition(self, setup):
        model, samples = setup
        bd = error_by_level(model, samples, num_bins=4)
        assert len(bd.group_names) == 4
        assert bd.counts.sum() == sum(s.num_nodes for s in samples)

    def test_rows_render(self, setup):
        model, samples = setup
        rows = error_by_gate_type(model, samples).rows()
        assert len(rows) == 4
        assert all("TTR" in r for r in rows)


class TestCalibration:
    def test_curve_shapes(self, setup):
        model, samples = setup
        centers, mp, ma = calibration_curve(model, samples, num_bins=10)
        assert centers.shape == mp.shape == ma.shape == (10,)
        occupied = ~np.isnan(mp)
        assert occupied.any()
        assert (mp[occupied] >= 0).all() and (mp[occupied] <= 1).all()

    def test_perfect_predictor_calibrated(self, setup):
        """A model that predicts the target exactly has pred == actual in
        every occupied bin (checked via a stub)."""
        _, samples = setup

        class Oracle:
            def predict(self, graph, workload):
                for s in samples:
                    if s.graph is graph:
                        from repro.models.base import Prediction

                        return Prediction(tr=s.target_tr, lg=s.target_lg)
                raise KeyError

        centers, mp, ma = calibration_curve(Oracle(), samples)
        occupied = ~np.isnan(mp)
        assert np.allclose(mp[occupied], ma[occupied])


class TestReport:
    def test_analyze_model_text(self, setup):
        model, samples = setup
        text = analyze_model(model, samples)
        assert "error by gate type" in text
        assert "calibration" in text
        assert "AND" in text
