"""Multi-circuit packing into super-graph plans."""

import numpy as np
import pytest

from repro.runtime.pack import (
    MAX_PACK_MEMBERS,
    clear_pack_cache,
    configure_pack_cache,
    pack_graphs,
)
from repro.runtime.plan import clear_plan_cache, plan_for

from tests.conftest import build_graph as make_graph


@pytest.fixture(autouse=True)
def fresh_caches():
    clear_plan_cache()
    clear_pack_cache()
    configure_pack_cache(32)
    yield
    clear_plan_cache()
    clear_pack_cache()
    configure_pack_cache(32)


def test_empty_pack_rejected():
    with pytest.raises(ValueError):
        pack_graphs([])


def test_oversized_pack_rejected():
    # The guard fires on length alone — no per-member work happens, so
    # an absurd member count is still a cheap, clear error.
    graph = make_graph(seed=1)
    with pytest.raises(ValueError, match="MAX_PACK_MEMBERS"):
        pack_graphs([graph] * (MAX_PACK_MEMBERS + 1))


def test_single_member_reuses_member_plan():
    graph = make_graph(seed=1)
    packed = pack_graphs([graph])
    assert packed.plan is plan_for(graph)
    assert packed.offsets == (0,)
    assert packed.sizes == (graph.num_nodes,)


def test_offsets_and_sizes_cover_union():
    graphs = [make_graph(seed=s, n_gates=20 + 5 * s) for s in range(3)]
    packed = pack_graphs(graphs)
    assert packed.num_members == 3
    assert packed.sizes == tuple(g.num_nodes for g in graphs)
    assert packed.offsets == (0, graphs[0].num_nodes, graphs[0].num_nodes + graphs[1].num_nodes)
    assert packed.num_nodes == sum(g.num_nodes for g in graphs)


def test_member_slices_preserve_structure():
    graphs = [make_graph(seed=s) for s in (4, 5)]
    packed = pack_graphs(graphs)
    union = packed.plan.graph
    for member, graph in enumerate(graphs):
        sl = packed.member_slice(member)
        np.testing.assert_array_equal(
            union.type_index[sl], graph.type_index
        )
        np.testing.assert_array_equal(union.features[sl], graph.features)


def test_pack_cache_hit_returns_same_object():
    graphs = [make_graph(seed=s) for s in (6, 7)]
    assert pack_graphs(graphs) is pack_graphs(graphs)
    # A different composition is a different entry.
    assert pack_graphs(graphs) is not pack_graphs(list(reversed(graphs)))


def test_repeated_structure_packs():
    graph = make_graph(seed=8)
    packed = pack_graphs([graph, graph, graph])
    assert packed.num_members == 3
    assert packed.num_nodes == 3 * graph.num_nodes


def test_pack_cache_eviction():
    configure_pack_cache(1)
    a = pack_graphs([make_graph(seed=9)])
    b = pack_graphs([make_graph(seed=10)])
    assert pack_graphs([b.plan.graph]) is b
    assert pack_graphs([a.plan.graph]) is not a
