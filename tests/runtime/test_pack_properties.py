"""Hypothesis-driven properties of packing and the plan LRU.

Seeded random netlists from :mod:`repro.circuit.generate` exercise the
invariants the packed training/serving paths rely on: disjoint unions
round-trip node and edge counts, member slices tile the union exactly,
and fingerprint-equal structures share one cached plan (and therefore
identical schedule objects).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.circuit.graph import CircuitGraph
from repro.runtime.pack import clear_pack_cache, pack_graphs
from repro.runtime.plan import clear_plan_cache, fingerprint_of, plan_for

from tests.conftest import build_graph


@pytest.fixture(autouse=True)
def fresh_caches():
    clear_plan_cache()
    clear_pack_cache()
    yield
    clear_plan_cache()
    clear_pack_cache()


def random_graph(seed: int, n_dffs: int = 3, n_gates: int = 30) -> CircuitGraph:
    return build_graph(seed, 4, n_dffs, n_gates)


def graph_num_edges(graph: CircuitGraph) -> int:
    nl = graph.netlist
    return sum(len(nl.fanins(node)) for node in nl.nodes())


class TestPackRoundTrip:
    @settings(max_examples=15, deadline=None)
    @given(
        seeds=st.lists(st.integers(0, 10_000), min_size=1, max_size=5),
        n_gates=st.integers(10, 60),
    )
    def test_union_round_trips_node_and_edge_counts(self, seeds, n_gates):
        graphs = [random_graph(seed, n_gates=n_gates) for seed in seeds]
        packed = pack_graphs(graphs, cache=False)
        assert packed.num_members == len(graphs)
        assert packed.num_nodes == sum(g.num_nodes for g in graphs)
        assert graph_num_edges(packed.plan.graph) == sum(
            graph_num_edges(g) for g in graphs
        )
        assert packed.sizes == tuple(g.num_nodes for g in graphs)

    @settings(max_examples=15, deadline=None)
    @given(seeds=st.lists(st.integers(0, 10_000), min_size=1, max_size=5))
    def test_member_slices_tile_the_union(self, seeds):
        graphs = [random_graph(seed) for seed in seeds]
        packed = pack_graphs(graphs, cache=False)
        covered = np.zeros(packed.num_nodes, dtype=bool)
        for k, graph in enumerate(graphs):
            sl = packed.member_slice(k)
            assert sl.stop - sl.start == graph.num_nodes
            assert not covered[sl].any()
            covered[sl] = True
            # Per-member features survive the union unchanged.
            assert np.array_equal(
                packed.plan.graph.features[sl], graph.features
            )
        assert covered.all()

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000), k=st.integers(2, 5))
    def test_pack_of_identical_members_replicates_features(self, seed, k):
        graph = random_graph(seed)
        packed = pack_graphs([graph] * k, cache=False)
        assert packed.num_nodes == k * graph.num_nodes
        assert len(set(packed.member_keys)) == 1


class TestPlanCacheProperties:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_fingerprint_equal_netlists_share_one_plan(self, seed):
        # Two independent builds of the same seed: equal structure, equal
        # fingerprint, different objects (the second build deliberately
        # bypasses the memoized factory to get a distinct graph object).
        g1 = random_graph(seed)
        g2 = CircuitGraph(g1.netlist.copy())
        assert g1 is not g2
        assert fingerprint_of(g1) == fingerprint_of(g2)
        p1 = plan_for(g1)
        p2 = plan_for(g2)
        assert p1 is p2

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10_000), custom=st.booleans())
    def test_lru_hits_return_identical_schedules(self, seed, custom):
        first = plan_for(random_graph(seed)).schedule(custom=custom)
        again = plan_for(random_graph(seed)).schedule(custom=custom)
        assert first is again  # the memoized tuple itself, not a copy
        fwd, rev = first
        for batch in fwd + rev:
            assert batch.num_nodes > 0
            assert batch.num_edges > 0

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10_000), custom=st.booleans())
    def test_feature_rows_align_with_schedule(self, seed, custom):
        plan = plan_for(random_graph(seed))
        fwd, rev = plan.schedule(custom=custom)
        fwd_rows, rev_rows = plan.feature_rows(custom, np.float64)
        assert len(fwd_rows) == len(fwd) and len(rev_rows) == len(rev)
        feats = plan.features(np.float64)
        for batch, rows in zip(fwd + rev, fwd_rows + rev_rows):
            assert np.array_equal(rows, feats[batch.nodes])
        # Cached: the second call returns the same tuples.
        assert plan.feature_rows(custom, np.float64)[0] is fwd_rows
