"""Shared-memory blocks and the explicit-start-method mp context.

These are the foundations the multi-process gateway stands on, tested in
isolation: byte-exact array round-trips through :class:`ShmBlock`, arena
layout/overflow semantics of :func:`write_arrays`, owner-unlink hygiene
against ``/dev/shm``, bitwise parameter-block publication, and the
fork-safety policy of :func:`resolve_mp_context`.
"""

import multiprocessing
from pathlib import Path

import numpy as np
import pytest

from repro.models.base import ModelConfig
from repro.models.deepseq import DeepSeq
from repro.runtime.mp import SAFE_METHODS, resolve_mp_context
from repro.runtime.shm import (
    SHM_PREFIX,
    ShmBlock,
    attach_param_block,
    publish_param_block,
    write_arrays,
)


def shm_entries():
    """Current /dev/shm segments created by this repo."""
    root = Path("/dev/shm")
    if not root.is_dir():  # pragma: no cover - non-Linux
        pytest.skip("/dev/shm not available")
    return {p.name for p in root.glob(f"{SHM_PREFIX}*")}


class TestShmBlock:
    def test_roundtrip_bitwise(self):
        block = ShmBlock.create(1 << 16)
        try:
            rng = np.random.default_rng(0)
            src = rng.standard_normal(512)
            view = block.ndarray(128, src.shape, np.float64)
            view[...] = src
            del view
            again = block.ndarray(128, src.shape, np.float64)
            np.testing.assert_array_equal(src, again)
            del again
        finally:
            block.close()
            block.unlink()

    def test_attach_sees_owner_writes(self):
        block = ShmBlock.create(4096)
        try:
            data = np.arange(64, dtype=np.float64)
            write_arrays(block, [data])
            other = ShmBlock.attach(block.name)
            view = other.ndarray(0, (64,), np.float64)
            np.testing.assert_array_equal(data, view)
            del view
            other.close()
        finally:
            block.close()
            block.unlink()

    def test_out_of_bounds_view_rejected(self):
        block = ShmBlock.create(1024)
        try:
            with pytest.raises(ValueError):
                block.ndarray(1020, (2,), np.float64)
            with pytest.raises(ValueError):
                block.ndarray(-8, (1,), np.float64)
        finally:
            block.close()
            block.unlink()

    def test_unlink_removes_dev_shm_entry(self):
        before = shm_entries()
        block = ShmBlock.create(4096, tag="probe")
        assert block.name in shm_entries()
        block.close()
        block.unlink()
        assert shm_entries() <= before

    def test_unlink_idempotent_and_attacher_never_unlinks(self):
        block = ShmBlock.create(4096)
        attacher = ShmBlock.attach(block.name)
        attacher.close()
        attacher.unlink()  # no-op: not the owner
        assert block.name in shm_entries()
        block.close()
        block.unlink()
        block.unlink()  # idempotent

    def test_atexit_net_unlinks_leaked_owner_blocks(self):
        from repro.runtime.shm import _LIVE_OWNERS, _unlink_leaked_owners

        block = ShmBlock.create(4096, tag="leak")
        assert block in _LIVE_OWNERS
        _unlink_leaked_owners()  # what interpreter shutdown would run
        assert block.name not in shm_entries()
        with pytest.raises(FileNotFoundError):
            ShmBlock.attach(block.name)
        block.close()
        block.unlink()  # still idempotent after the net fired

    def test_explicit_unlink_leaves_the_atexit_net(self):
        from repro.runtime.shm import _LIVE_OWNERS

        block = ShmBlock.create(4096, tag="owned")
        block.close()
        block.unlink()
        assert block not in _LIVE_OWNERS
        _unlink_leaked_owners_names = {b.name for b in _LIVE_OWNERS}
        assert block.name not in _unlink_leaked_owners_names

    def test_attached_blocks_never_enter_the_net(self):
        from repro.runtime.shm import _LIVE_OWNERS

        block = ShmBlock.create(4096, tag="net")
        attacher = ShmBlock.attach(block.name)
        assert attacher not in _LIVE_OWNERS
        attacher.close()
        block.close()
        block.unlink()


class TestWriteArrays:
    def test_layout_is_aligned_and_ordered(self):
        block = ShmBlock.create(1 << 12)
        try:
            arrays = [
                np.arange(5, dtype=np.float64),
                np.arange(9, dtype=np.float64) * 0.5,
                np.zeros(1),
            ]
            layout = write_arrays(block, arrays)
            assert layout is not None
            offsets = [off for off, _ in layout]
            assert offsets == sorted(offsets)
            for (off, shape), src in zip(layout, arrays):
                assert off % 64 == 0
                assert shape == src.shape
                np.testing.assert_array_equal(
                    src, block.ndarray(off, shape, np.float64)
                )
        finally:
            block.close()
            block.unlink()

    def test_overflow_returns_none_not_raise(self):
        block = ShmBlock.create(256)
        try:
            assert write_arrays(block, [np.zeros(1000)]) is None
            # A fitting write still works after the refused one.
            assert write_arrays(block, [np.zeros(8)]) is not None
        finally:
            block.close()
            block.unlink()

    def test_offset_continues_an_arena(self):
        block = ShmBlock.create(1 << 12)
        try:
            first = write_arrays(block, [np.ones(16)])
            (off0, _), = first
            second = write_arrays(block, [np.full(16, 2.0)], offset=off0 + 16 * 8)
            (off1, _), = second
            assert off1 > off0
            np.testing.assert_array_equal(
                np.ones(16), block.ndarray(off0, (16,), np.float64)
            )
        finally:
            block.close()
            block.unlink()


class TestParamBlock:
    def test_publish_attach_matches_astype(self):
        model = DeepSeq(ModelConfig(hidden=6, iterations=2, seed=3))
        block, layout = publish_param_block(model, np.float32)
        try:
            attached, views = attach_param_block(block.name, layout, np.float32)
            params = [p.data for p in model.parameters()]
            assert len(views) == len(params)
            for view, param in zip(views, params):
                np.testing.assert_array_equal(param.astype(np.float32), view)
                assert not view.flags.writeable
            del view, views
            attached.close()
        finally:
            block.close()
            block.unlink()


class TestMpContext:
    def test_default_context_is_never_fork(self):
        ctx = resolve_mp_context(None)
        assert ctx.get_start_method() in SAFE_METHODS

    def test_explicit_methods_honored(self):
        for method in ("forkserver", "spawn"):
            if method in multiprocessing.get_all_start_methods():
                assert resolve_mp_context(method).get_start_method() == method
        # Explicitly requesting fork is allowed (caller's choice)...
        if "fork" in multiprocessing.get_all_start_methods():
            assert resolve_mp_context("fork").get_start_method() == "fork"

    def test_unknown_method_raises(self):
        with pytest.raises(ValueError):
            resolve_mp_context("teleport")
