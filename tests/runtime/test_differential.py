"""Differential tests for the runtime fast paths.

Every fast path in the runtime has a slow, obviously-correct counterpart;
these tests pin the fast path to it:

* fused training kernels (GRU, dual attention) vs the composed autograd
  operator graph — forward bitwise, gradients to rounding error;
* float32 parameter-shadow inference vs float64 — within tolerance;
* packed K-circuit execution vs sequential per-circuit ``predict`` —
  float64 bitwise, across all three model families, DFF-heavy circuits
  and single-node edge cases;
* packed training gradients vs the legacy ``merge_samples`` path —
  float64 bitwise.
"""

import numpy as np
import pytest

from repro.models.aggregators import DualAttentionAggregator
from repro.models.base import ModelConfig
from repro.models.registry import make_model
from repro.nn.functional import l1_loss
from repro.nn.recurrent import GRUCell
from repro.nn.tensor import Tensor
from repro.runtime.pack import clear_pack_cache
from repro.runtime.plan import clear_plan_cache
from repro.runtime.predictor import predict_one, predict_packed
from repro.runtime.trainstep import pack_samples, train_step
from repro.sim.workload import random_workload
from repro.train.dataset import CircuitSample, merge_samples

CFG = ModelConfig(hidden=10, iterations=2, seed=0)

#: (model name, aggregator) — one row per model family.
FAMILIES = [
    ("deepseq", "dual_attention"),
    ("dag_recgnn", "attention"),
    ("dag_convgnn", "conv_sum"),
]


@pytest.fixture(autouse=True)
def fresh_caches():
    clear_plan_cache()
    clear_pack_cache()
    yield
    clear_plan_cache()
    clear_pack_cache()


from tests.conftest import build_pair, single_node_pair


def make_pair(seed=0, n_pis=4, n_dffs=3, n_gates=30):
    return build_pair(seed, n_pis, n_dffs, n_gates)


def dff_heavy_pair(seed=7):
    """More flip-flops than gates: exercises DFF copy + baseline batches."""
    return make_pair(seed=seed, n_dffs=12, n_gates=14)


def grads_of(model):
    return [
        None if p.grad is None else p.grad.copy() for p in model.parameters()
    ]


class TestFusedGruVsComposed:
    @pytest.mark.parametrize("rows", [1, 7])
    def test_forward_bitwise_and_grads_close(self, rows):
        rng = np.random.default_rng(3)
        gru = GRUCell(12, 6, seed=1)
        x = Tensor(rng.normal(size=(rows, 12)), requires_grad=True)
        h = Tensor(rng.normal(size=(rows, 6)), requires_grad=True)
        fused = gru._forward_train(x, h)
        composed = gru._forward_composed(x, h)
        assert np.array_equal(fused.data, composed.data)
        seed_grad = rng.normal(size=fused.data.shape)
        fused.backward(seed_grad.copy())
        got = [p.grad.copy() for p in [x, h] + gru.parameters()]
        for p in [x, h] + gru.parameters():
            p.zero_grad()
        composed.backward(seed_grad.copy())
        want = [p.grad.copy() for p in [x, h] + gru.parameters()]
        for g1, g2 in zip(got, want):
            np.testing.assert_allclose(g1, g2, rtol=1e-12, atol=1e-13)


class TestFusedDualAttentionVsComposed:
    def test_forward_bitwise_and_grads_close(self):
        rng = np.random.default_rng(4)
        graph, _ = make_pair(seed=5)
        agg = DualAttentionAggregator(6, seed=2)
        h_cur = Tensor(
            rng.normal(size=(graph.num_nodes, 6)), requires_grad=True
        )
        h_prev = Tensor(
            rng.normal(size=(graph.num_nodes, 6)), requires_grad=True
        )
        for batch in graph.forward_batches[:3]:
            layout = batch.dst_layout()
            assert layout is not None
            fused = agg._forward_train(h_cur, h_prev, batch, layout)
            composed = agg._forward_composed(h_cur, h_prev, batch, layout)
            assert np.array_equal(fused.data, composed.data)
            seed_grad = rng.normal(size=fused.data.shape)
            fused.backward(seed_grad.copy())
            got = [p.grad.copy() for p in [h_cur, h_prev] + agg.parameters()]
            for p in [h_cur, h_prev] + agg.parameters():
                p.zero_grad()
            composed.backward(seed_grad.copy())
            want = [p.grad.copy() for p in [h_cur, h_prev] + agg.parameters()]
            for g1, g2 in zip(got, want):
                np.testing.assert_allclose(g1, g2, rtol=1e-11, atol=1e-13)
            for p in [h_cur, h_prev] + agg.parameters():
                p.zero_grad()


class TestFloat32VsFloat64:
    @pytest.mark.parametrize("name,agg", FAMILIES)
    def test_predictions_within_tolerance(self, name, agg):
        model = make_model(name, CFG, agg)
        for graph, wl in [make_pair(3), dff_heavy_pair(), single_node_pair()]:
            p64 = predict_one(model, graph, wl, dtype=np.float64)
            p32 = predict_one(model, graph, wl, dtype=np.float32)
            assert p32.tr.dtype == np.float32
            np.testing.assert_allclose(p32.tr, p64.tr, atol=2e-4)
            np.testing.assert_allclose(p32.lg, p64.lg, atol=2e-4)


class TestPackedVsSequential:
    @pytest.mark.parametrize("name,agg", FAMILIES)
    def test_float64_bitwise(self, name, agg):
        model = make_model(name, CFG, agg)
        pairs = [
            make_pair(1),
            dff_heavy_pair(),
            single_node_pair(),
            make_pair(2, n_gates=45),
        ]
        graphs = [g for g, _ in pairs]
        workloads = [w for _, w in pairs]
        packed = predict_packed(model, graphs, workloads, dtype=np.float64)
        for (graph, wl), pred in zip(pairs, packed):
            solo = model.predict(graph, wl)
            assert np.array_equal(pred.tr, solo.tr)
            assert np.array_equal(pred.lg, solo.lg)


class TestPackedVsMergedTraining:
    @pytest.mark.parametrize("name,agg", FAMILIES)
    def test_gradients_bitwise(self, name, agg):
        pairs = [make_pair(1), dff_heavy_pair(), single_node_pair()]
        rng = np.random.default_rng(0)
        samples = [
            CircuitSample(
                graph=graph,
                workload=wl,
                target_tr=rng.uniform(size=(graph.num_nodes, 2)),
                target_lg=rng.uniform(size=graph.num_nodes),
                name=f"s{k}",
            )
            for k, (graph, wl) in enumerate(pairs)
        ]
        model = make_model(name, CFG, agg)
        model.zero_grad()
        result = train_step(model, pack_samples(samples))
        packed_grads = grads_of(model)

        model.zero_grad()
        merged = merge_samples(list(samples), name="legacy_merge")
        pred_tr, pred_lg = model(merged.graph, merged.workload)
        loss_tr = l1_loss(pred_tr, merged.target_tr)
        loss_lg = l1_loss(pred_lg, merged.target_lg[:, None])
        (loss_tr + loss_lg).backward()
        merged_grads = grads_of(model)

        assert result.loss == pytest.approx(
            loss_tr.item() + loss_lg.item(), rel=0, abs=0
        )
        for got, want in zip(packed_grads, merged_grads):
            assert got is not None and want is not None
            assert np.array_equal(got, want)

    def test_per_member_losses_unpack(self):
        graph1, wl1 = make_pair(1)
        graph2, wl2 = make_pair(2)
        rng = np.random.default_rng(1)
        samples = [
            CircuitSample(
                graph=g,
                workload=w,
                target_tr=rng.uniform(size=(g.num_nodes, 2)),
                target_lg=rng.uniform(size=g.num_nodes),
                name=n,
            )
            for g, w, n in [(graph1, wl1, "a"), (graph2, wl2, "b")]
        ]
        model = make_model("deepseq", CFG, "dual_attention")
        batch = pack_samples(samples)
        result = train_step(model, batch)
        # Per-member losses must be the L1 means over each member's slice
        # of the packed forward (the same forward the gradients came from).
        from repro.nn.tensor import no_grad

        with no_grad():
            pred_tr, pred_lg = model(batch.graph, batch.workload)
        for k, sample in enumerate(samples):
            sl = batch.member_slice(k)
            assert result.member_tr[k] == pytest.approx(
                np.abs(pred_tr.data[sl] - sample.target_tr).mean(), abs=1e-15
            )
            assert result.member_lg[k] == pytest.approx(
                np.abs(pred_lg.data[sl, 0] - sample.target_lg).mean(),
                abs=1e-15,
            )
        # And the names ride along for reporting.
        assert result.names == ("a", "b")
