"""Thread-safety of the process-wide plan and pack LRU caches.

Many threads hammer ``plan_for`` / ``pack_graphs`` over a shared set of
structures; the invariants are those the serving workers rely on: a
fingerprint maps to exactly one live plan object (no torn inserts, no
duplicate compilations visible to callers), the LRU bound holds under
concurrent eviction pressure, and the hit/miss counters reconcile with
the number of calls made.
"""

import threading

import pytest

from repro.runtime.pack import (
    clear_pack_cache,
    configure_pack_cache,
    pack_cache_info,
    pack_graphs,
)
from repro.runtime.plan import (
    clear_plan_cache,
    configure_plan_cache,
    fingerprint_of,
    plan_cache_info,
    plan_for,
)

from tests.conftest import build_graph


@pytest.fixture(autouse=True)
def fresh_caches():
    clear_plan_cache()
    clear_pack_cache()
    configure_plan_cache(128)
    configure_pack_cache(32)
    yield
    clear_plan_cache()
    clear_pack_cache()
    configure_plan_cache(128)
    configure_pack_cache(32)


def run_threads(n, target):
    threads = [threading.Thread(target=target, args=(i,)) for i in range(n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()


GRAPHS = [build_graph(seed=s, n_gates=15 + s) for s in range(8)]


class TestPlanCacheThreading:
    def test_one_plan_object_per_fingerprint(self):
        results: list[list] = [[] for _ in range(8)]

        def worker(tid):
            for i in range(50):
                graph = GRAPHS[(tid + i) % len(GRAPHS)]
                results[tid].append(plan_for(graph))

        run_threads(8, worker)
        by_key: dict[str, set[int]] = {}
        for plans in results:
            for plan in plans:
                by_key.setdefault(plan.key, set()).add(id(plan))
        assert len(by_key) == len(GRAPHS)
        # Every caller that looked up a fingerprint got the same object.
        for key, ids in by_key.items():
            assert len(ids) == 1, f"duplicate live plans for {key[:12]}"

    def test_counters_reconcile_with_calls(self):
        calls_per_thread, n_threads = 50, 8

        def worker(tid):
            for i in range(calls_per_thread):
                plan_for(GRAPHS[(tid + i) % len(GRAPHS)])

        run_threads(n_threads, worker)
        info = plan_cache_info()
        assert info.hits + info.misses == n_threads * calls_per_thread
        # Concurrent first-misses may each build (losers adopt the cached
        # plan), so misses can exceed the structure count — but never the
        # thread count per structure.
        assert len(GRAPHS) <= info.misses <= len(GRAPHS) * n_threads
        assert info.size == len(GRAPHS)
        assert info.evictions == 0

    def test_lru_bound_holds_under_eviction_pressure(self):
        configure_plan_cache(3)

        def worker(tid):
            for i in range(40):
                plan_for(GRAPHS[(tid * 3 + i) % len(GRAPHS)])

        run_threads(6, worker)
        info = plan_cache_info()
        assert info.size <= 3
        assert info.evictions > 0
        assert info.hits + info.misses == 6 * 40


class TestPackCacheThreading:
    def test_one_packed_plan_per_composition(self):
        compositions = [
            tuple(GRAPHS[:2]),
            tuple(GRAPHS[2:5]),
            tuple(GRAPHS[5:]),
            (GRAPHS[0], GRAPHS[0]),  # duplicate members are a valid pack
        ]
        results: list[list] = [[] for _ in range(8)]

        def worker(tid):
            for i in range(30):
                comp = compositions[(tid + i) % len(compositions)]
                results[tid].append(pack_graphs(list(comp)))

        run_threads(8, worker)
        by_key: dict[tuple, set[int]] = {}
        for packs in results:
            for packed in packs:
                by_key.setdefault(packed.member_keys, set()).add(id(packed))
        assert len(by_key) == len(compositions)
        for keys, ids in by_key.items():
            assert len(ids) == 1, f"duplicate live packs for {keys}"

    def test_counters_reconcile_with_calls(self):
        def worker(tid):
            for i in range(30):
                k = 1 + (tid + i) % 4
                pack_graphs(GRAPHS[:k])

        run_threads(6, worker)
        info = pack_cache_info()
        assert info.hits + info.misses == 6 * 30
        assert 4 <= info.misses <= 4 * 6
        assert info.size == 4
        assert info.evictions == 0

    def test_lru_bound_holds_under_eviction_pressure(self):
        configure_pack_cache(2)

        def worker(tid):
            for i in range(20):
                k = 1 + (tid + i) % 5
                pack_graphs(GRAPHS[:k])

        run_threads(6, worker)
        info = pack_cache_info()
        assert info.size <= 2
        assert info.evictions > 0

    def test_pack_members_share_plan_cache_with_serving(self):
        """A packed single is the member's own cached plan — also when the
        first touch came from another thread."""
        plans = {}

        def worker(tid):
            plans[tid] = pack_graphs([GRAPHS[0]]).plan

        run_threads(4, worker)
        assert len({id(p) for p in plans.values()}) == 1
        assert plans[0] is plan_for(GRAPHS[0])
        assert plans[0].key == fingerprint_of(GRAPHS[0])
