"""Plan compilation, fingerprints, and the shared LRU cache."""

import numpy as np
import pytest

from repro.circuit.gates import GateType
from repro.circuit.graph import CircuitGraph
from repro.circuit.netlist import Netlist
from repro.runtime.plan import (
    baseline_batches,
    clear_plan_cache,
    configure_plan_cache,
    fingerprint_of,
    plan_cache_info,
    plan_for,
)


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_plan_cache()
    configure_plan_cache(128)
    yield
    clear_plan_cache()
    configure_plan_cache(128)


from tests.conftest import build_graph


def make_aig(seed=0, n_pis=5, n_dffs=3, n_gates=40):
    return build_graph(seed, n_pis, n_dffs, n_gates).netlist


def toggle_netlist(name="toggle", pi_name="a"):
    nl = Netlist(name=name)
    a = nl.add_pi(pi_name)
    ff = nl.add_dff(None, f"{pi_name}_state")
    inv = nl.add_gate(GateType.NOT, [ff], f"{pi_name}_n1")
    g = nl.add_gate(GateType.AND, [a, inv], f"{pi_name}_g1")
    nl.set_fanins(ff, [g])
    nl.add_po(g)
    nl.validate()
    return nl


class TestFingerprint:
    def test_stable_across_copies(self):
        nl = make_aig(seed=1)
        assert nl.fingerprint() == nl.copy().fingerprint()

    def test_ignores_node_names(self):
        assert (
            toggle_netlist("a", "x").fingerprint()
            == toggle_netlist("b", "y").fingerprint()
        )

    def test_sensitive_to_structure(self):
        base = toggle_netlist()
        extra = toggle_netlist()
        extra.add_gate(GateType.NOT, [0], "tail")
        assert base.fingerprint() != extra.fingerprint()

    def test_sensitive_to_pos(self):
        base = toggle_netlist()
        more_pos = toggle_netlist()
        more_pos.add_po(2)
        assert base.fingerprint() != more_pos.fingerprint()

    def test_graph_fingerprint_memoized(self):
        graph = CircuitGraph(make_aig(seed=2))
        assert fingerprint_of(graph) == fingerprint_of(graph)
        assert fingerprint_of(graph) == graph.netlist.fingerprint()


class TestPlanCache:
    def test_netlist_and_graph_share_entry(self):
        nl = make_aig(seed=3)
        plan_a = plan_for(nl)
        plan_b = plan_for(CircuitGraph(nl))
        assert plan_a is plan_b
        info = plan_cache_info()
        assert info.misses == 1 and info.hits == 1

    def test_structural_twins_share_plan(self):
        assert plan_for(toggle_netlist("a", "x")) is plan_for(toggle_netlist("b", "y"))

    def test_graph_object_not_rebuilt(self):
        graph = CircuitGraph(make_aig(seed=4))
        assert plan_for(graph).graph is graph

    def test_lru_eviction(self):
        configure_plan_cache(2)
        plans = [plan_for(make_aig(seed=s)) for s in (10, 11, 12)]
        info = plan_cache_info()
        assert info.size == 2 and info.evictions == 1
        # seed 10 was evicted: compiling it again is a miss...
        assert plan_for(plans[0].graph) is not plans[0]
        # ...while seed 12 is still resident.
        assert plan_for(plans[2].graph) is plans[2]

    def test_cache_opt_out(self):
        nl = make_aig(seed=5)
        plan = plan_for(nl, cache=False)
        assert plan_for(nl, cache=False) is not plan
        assert plan_cache_info().size == 0


class TestSchedules:
    def test_custom_schedule_drops_zero_edge_sink_level(self):
        graph = CircuitGraph(make_aig(seed=6))
        fwd, rev = plan_for(graph).schedule(custom=True)
        assert all(b.num_edges > 0 for b in fwd + rev)
        # The raw reverse schedule starts with the sink level, which has
        # no comb successors and therefore no edges.
        assert graph.reverse_batches[0].num_edges == 0
        total_raw = sum(b.num_edges for b in graph.reverse_batches)
        assert sum(b.num_edges for b in rev) == total_raw

    def test_baseline_schedule_includes_dff_updates(self):
        graph = CircuitGraph(make_aig(seed=7, n_dffs=4))
        fwd, _ = plan_for(graph).schedule(custom=False)
        dff_nodes = set(int(d) for d in graph.dff_ids)
        scheduled = set(int(n) for b in fwd for n in b.nodes)
        assert dff_nodes <= scheduled

    def test_baseline_matches_legacy_helper(self):
        graph = CircuitGraph(make_aig(seed=8))
        raw_fwd, raw_rev = baseline_batches(graph)
        fwd, rev = plan_for(graph).schedule(custom=False)
        assert sum(b.num_edges for b in fwd) == sum(b.num_edges for b in raw_fwd)
        assert sum(b.num_edges for b in rev) == sum(
            b.num_edges for b in raw_rev
        )

    def test_schedules_are_memoized(self):
        plan = plan_for(make_aig(seed=9))
        assert plan.schedule(True) is plan.schedule(True)
        assert plan.schedule(False) is plan.schedule(False)


class TestFeatures:
    def test_float64_returns_graph_matrix(self):
        graph = CircuitGraph(make_aig(seed=10))
        plan = plan_for(graph)
        assert plan.features(np.float64) is graph.features

    def test_float32_cast_cached(self):
        plan = plan_for(make_aig(seed=11))
        f32 = plan.features(np.float32)
        assert f32.dtype == np.float32
        assert plan.features("float32") is f32
        np.testing.assert_array_equal(f32, plan.features(np.float64))


class TestStreamedFeatureRows:
    def test_resident_bytes_positive_and_scales_with_dtype(self):
        plan = plan_for(make_aig(seed=3))
        assert plan.resident_bytes() > 0
        assert plan.resident_bytes(dtype=np.float32) * 2 == plan.resident_bytes(
            dtype=np.float64
        )

    def test_streams_only_under_tight_budget(self):
        from repro.memory import MemoryBudget
        from repro.runtime.plan import StreamedFeatureRows

        plan = plan_for(make_aig(seed=4))
        loose = plan.feature_rows(budget=MemoryBudget(plan_bytes=1 << 30))
        assert isinstance(loose[0], tuple)
        tight = plan.feature_rows(budget=MemoryBudget(plan_bytes=8))
        assert isinstance(tight[0], StreamedFeatureRows)
        assert isinstance(tight[1], StreamedFeatureRows)

    def test_streamed_rows_bitwise_match_cached(self):
        from repro.memory import MemoryBudget

        plan = plan_for(make_aig(seed=5))
        cached = plan.feature_rows()
        streamed = plan.feature_rows(budget=MemoryBudget(plan_bytes=8))
        for direction in (0, 1):
            assert len(streamed[direction]) == len(cached[direction])
            for s, c in zip(streamed[direction], cached[direction]):
                assert np.array_equal(s, c)

    def test_streamed_rows_not_cached(self):
        from repro.memory import MemoryBudget

        plan = plan_for(make_aig(seed=6))
        a = plan.feature_rows(budget=MemoryBudget(plan_bytes=8))
        b = plan.feature_rows(budget=MemoryBudget(plan_bytes=8))
        assert a[0] is not b[0]
