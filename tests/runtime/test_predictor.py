"""Batched inference equivalence and the BatchedPredictor queue."""

import time

import numpy as np
import pytest

from repro.models.base import ModelConfig
from repro.models.baselines import DagConvGnn, DagRecGnn
from repro.models.deepseq import DeepSeq
from repro.runtime.pack import clear_pack_cache
from repro.runtime.plan import clear_plan_cache
from repro.runtime.predictor import (
    BatchedPredictor,
    ParameterShadow,
    PendingPrediction,
    predict_one,
    predict_packed,
    run_packed_isolated,
)

from tests.conftest import build_pair as make_pair, mixed_fleet


@pytest.fixture(autouse=True)
def fresh_caches():
    clear_plan_cache()
    clear_pack_cache()
    yield
    clear_plan_cache()
    clear_pack_cache()


MODELS = [
    pytest.param(
        lambda: DeepSeq(ModelConfig(hidden=16, iterations=3, seed=0)),
        id="deepseq",
    ),
    pytest.param(
        lambda: DagConvGnn(
            ModelConfig(hidden=16, iterations=3, aggregator="conv_sum", seed=1)
        ),
        id="dag_conv",
    ),
    pytest.param(
        lambda: DagRecGnn(
            ModelConfig(hidden=16, iterations=3, aggregator="attention", seed=2)
        ),
        id="dag_rec",
    ),
]


class TestPackedEquivalence:
    @pytest.mark.parametrize("make_model", MODELS)
    def test_float64_bitwise(self, make_model):
        model = make_model()
        graphs, workloads = mixed_fleet()
        sequential = [model.predict(g, w) for g, w in zip(graphs, workloads)]
        packed = predict_packed(model, graphs, workloads, dtype=np.float64)
        for seq, pack in zip(sequential, packed):
            np.testing.assert_array_equal(seq.tr, pack.tr)
            np.testing.assert_array_equal(seq.lg, pack.lg)

    @pytest.mark.parametrize("make_model", MODELS)
    def test_float32_close(self, make_model):
        model = make_model()
        graphs, workloads = mixed_fleet()
        sequential = [model.predict(g, w) for g, w in zip(graphs, workloads)]
        packed = predict_packed(model, graphs, workloads, dtype=np.float32)
        for seq, pack in zip(sequential, packed):
            assert pack.tr.dtype == np.float32
            assert np.abs(seq.tr - pack.tr).max() <= 1e-4
            assert np.abs(seq.lg - pack.lg).max() <= 1e-4

    @pytest.mark.parametrize("make_model", MODELS)
    def test_float32_bitwise_vs_sequential_float32(self, make_model):
        """Within one dtype the packing itself is exact: packed float32
        matches sequential float32 bitwise (the 1e-4 budget is purely the
        float64 -> float32 precision gap, not a packing artifact)."""
        model = make_model()
        graphs, workloads = mixed_fleet()
        sequential = [
            predict_one(model, g, w, dtype=np.float32)
            for g, w in zip(graphs, workloads)
        ]
        packed = predict_packed(model, graphs, workloads, dtype=np.float32)
        for seq, pack in zip(sequential, packed):
            np.testing.assert_array_equal(seq.tr, pack.tr)
            np.testing.assert_array_equal(seq.lg, pack.lg)

    def test_same_circuit_many_times(self):
        model = DeepSeq(ModelConfig(hidden=16, iterations=2, seed=0))
        graph, wl = make_pair(seed=3)
        single = model.predict(graph, wl)
        packed = predict_packed(model, [graph] * 4, [wl] * 4, dtype=np.float64)
        for pred in packed:
            np.testing.assert_array_equal(single.tr, pred.tr)
            np.testing.assert_array_equal(single.lg, pred.lg)

    def test_mismatched_lengths_rejected(self):
        model = DeepSeq(ModelConfig(hidden=16, iterations=2, seed=0))
        graph, wl = make_pair(seed=4)
        with pytest.raises(ValueError):
            predict_packed(model, [graph, graph], [wl])

    def test_shapes_per_member(self):
        model = DeepSeq(ModelConfig(hidden=16, iterations=2, seed=0))
        graphs, workloads = mixed_fleet()
        for graph, pred in zip(
            graphs, predict_packed(model, graphs, workloads)
        ):
            assert pred.tr.shape == (graph.num_nodes, 2)
            assert pred.lg.shape == (graph.num_nodes,)


class TestPredictOne:
    def test_accepts_netlist(self):
        model = DeepSeq(ModelConfig(hidden=16, iterations=2, seed=0))
        graph, wl = make_pair(seed=5)
        from_graph = predict_one(model, graph, wl)
        from_netlist = predict_one(model, graph.netlist, wl)
        np.testing.assert_array_equal(from_graph.tr, from_netlist.tr)

    def test_matches_model_predict(self):
        model = DeepSeq(ModelConfig(hidden=16, iterations=2, seed=0))
        graph, wl = make_pair(seed=6)
        a = model.predict(graph, wl)
        b = predict_one(model, graph, wl, dtype=np.float64)
        np.testing.assert_array_equal(a.tr, b.tr)

    def test_model_predict_dtype_kwarg(self):
        model = DeepSeq(ModelConfig(hidden=16, iterations=2, seed=0))
        graph, wl = make_pair(seed=7)
        fast = model.predict(graph, wl, dtype="float32")
        exact = model.predict(graph, wl)
        assert fast.tr.dtype == np.float32
        assert np.abs(fast.tr - exact.tr).max() <= 1e-4


class TestParameterShadow:
    def test_masters_restored(self):
        model = DeepSeq(ModelConfig(hidden=16, iterations=2, seed=0))
        masters = [p.data for p in model.parameters()]
        shadow = ParameterShadow(model, np.float32)
        with shadow.active():
            assert all(p.data.dtype == np.float32 for p in model.parameters())
        for p, master in zip(model.parameters(), masters):
            assert p.data is master
            assert p.data.dtype == np.float64

    def test_shadow_auto_refreshes_after_optimizer_step(self):
        from repro.nn.optim import SGD

        model = DeepSeq(ModelConfig(hidden=16, iterations=2, seed=0))
        graph, wl = make_pair(seed=16)
        predictor = BatchedPredictor(model, batch_size=2, dtype=np.float32)
        before = predictor.predict(graph, wl)
        opt = SGD(model.parameters(), lr=0.1)
        pred_tr, pred_lg = model(graph, wl)
        (pred_tr.sum() + pred_lg.sum()).backward()
        opt.step()  # bumps the global parameter version
        after = predictor.predict(graph, wl)
        expected = model.predict(graph, wl)
        assert np.abs(after.tr - expected.tr).max() <= 1e-4
        assert np.abs(after.tr - before.tr).max() > 0

    def test_shadow_auto_refreshes_after_load_state_dict(self):
        model = DeepSeq(ModelConfig(hidden=16, iterations=2, seed=0))
        other = DeepSeq(ModelConfig(hidden=16, iterations=2, seed=7))
        graph, wl = make_pair(seed=17)
        predictor = BatchedPredictor(model, batch_size=2, dtype=np.float32)
        predictor.predict(graph, wl)  # populate the float32 shadow
        model.load_state_dict(other.state_dict())
        refreshed = predictor.predict(graph, wl)
        expected = other.predict(graph, wl)
        assert np.abs(refreshed.tr - expected.tr).max() <= 1e-4

    def test_refresh_picks_up_new_weights(self):
        model = DeepSeq(ModelConfig(hidden=16, iterations=2, seed=0))
        graph, wl = make_pair(seed=8)
        predictor = BatchedPredictor(model, batch_size=2, dtype=np.float32)
        before = predictor.predict(graph, wl)
        for p in model.parameters():
            p.data[...] += 0.05  # simulate a fine-tuning update
        stale = predictor.predict(graph, wl)
        np.testing.assert_array_equal(before.tr, stale.tr)  # stale shadow
        predictor.refresh_parameters()
        fresh = predictor.predict(graph, wl)
        expected = model.predict(graph, wl)
        assert np.abs(fresh.tr - expected.tr).max() <= 1e-4
        assert np.abs(fresh.tr - before.tr).max() > 1e-4


class TestBatchedPredictor:
    def test_order_preserved(self):
        model = DeepSeq(ModelConfig(hidden=16, iterations=2, seed=0))
        graphs, workloads = mixed_fleet()
        sequential = [model.predict(g, w) for g, w in zip(graphs, workloads)]
        predictor = BatchedPredictor(model, batch_size=2, dtype=np.float64)
        results = predictor.predict_many(graphs, workloads)
        for seq, res in zip(sequential, results):
            np.testing.assert_array_equal(seq.tr, res.tr)
            np.testing.assert_array_equal(seq.lg, res.lg)

    def test_result_triggers_flush(self):
        model = DeepSeq(ModelConfig(hidden=16, iterations=2, seed=0))
        graph, wl = make_pair(seed=9)
        predictor = BatchedPredictor(model, batch_size=4, dtype=np.float64)
        handle = predictor.submit(graph, wl)
        assert not handle.done
        pred = handle.result()
        assert handle.done
        np.testing.assert_array_equal(pred.tr, model.predict(graph, wl).tr)

    def test_bounded_queue_autoflushes(self):
        model = DeepSeq(ModelConfig(hidden=16, iterations=1, seed=0))
        graph, wl = make_pair(seed=10)
        predictor = BatchedPredictor(
            model, batch_size=2, dtype=np.float64, max_pending=4
        )
        handles = [predictor.submit(graph, wl) for _ in range(4)]
        # Hitting max_pending drained the queue without an explicit flush.
        assert predictor.pending == 0
        assert all(h.done for h in handles)
        assert predictor.circuits_processed == 4
        assert predictor.batches_flushed == 2

    def test_submit_accepts_netlists(self):
        model = DeepSeq(ModelConfig(hidden=16, iterations=1, seed=0))
        graph, wl = make_pair(seed=11)
        predictor = BatchedPredictor(model, batch_size=2, dtype=np.float64)
        pred = predictor.predict(graph.netlist, wl)
        np.testing.assert_array_equal(pred.tr, model.predict(graph, wl).tr)

    def test_submit_rejects_pi_mismatch_eagerly(self):
        model = DeepSeq(ModelConfig(hidden=16, iterations=1, seed=0))
        graph, _ = make_pair(seed=13, n_pis=5)
        _, other_wl = make_pair(seed=14, n_pis=8)
        predictor = BatchedPredictor(model, batch_size=4)
        with pytest.raises(ValueError, match="PIs"):
            predictor.submit(graph, other_wl)
        assert predictor.pending == 0

    def test_failed_request_does_not_poison_chunk(self):
        """A request that fails at flush resolves only its own handle with
        the error; chunk siblings still get their predictions."""
        model = DeepSeq(ModelConfig(hidden=16, iterations=1, seed=0))
        graph, wl = make_pair(seed=15)
        predictor = BatchedPredictor(model, batch_size=3, dtype=np.float64)
        good_before = predictor.submit(graph, wl)
        # Sneak an invalid request past submit's eager check.
        bad_wl = type(wl)(wl.pi_probs[:-1], name="bad", seed=0)
        bad = PendingPrediction(predictor)
        predictor._queue.append((graph, bad_wl, bad, time.monotonic()))
        good_after = predictor.submit(graph, wl)
        predictor.flush()
        expected = model.predict(graph, wl)
        np.testing.assert_array_equal(good_before.result().tr, expected.tr)
        np.testing.assert_array_equal(good_after.result().tr, expected.tr)
        with pytest.raises(ValueError):
            bad.result()

    def test_run_packed_isolated_slots_errors_in_place(self):
        """The shared chunk runner: sibling results around a poison slot."""
        model = DeepSeq(ModelConfig(hidden=16, iterations=1, seed=0))
        graph, wl = make_pair(seed=15)
        bad_wl = type(wl)(wl.pi_probs[:-1], name="bad", seed=0)
        results = run_packed_isolated(
            model, [graph, graph, graph], [wl, bad_wl, wl], dtype=np.float64
        )
        expected = model.predict(graph, wl)
        np.testing.assert_array_equal(results[0].tr, expected.tr)
        assert isinstance(results[1], ValueError)
        np.testing.assert_array_equal(results[2].tr, expected.tr)

    def test_invalid_configuration(self):
        model = DeepSeq(ModelConfig(hidden=16, iterations=1, seed=0))
        with pytest.raises(ValueError):
            BatchedPredictor(model, batch_size=0)
        with pytest.raises(ValueError):
            BatchedPredictor(model, batch_size=8, max_pending=4)
        with pytest.raises(ValueError):
            BatchedPredictor(model, max_latency_ms=0)

    def test_predict_many_length_mismatch(self):
        model = DeepSeq(ModelConfig(hidden=16, iterations=1, seed=0))
        graph, wl = make_pair(seed=12)
        predictor = BatchedPredictor(model, batch_size=2)
        with pytest.raises(ValueError):
            predictor.predict_many([graph], [wl, wl])


class TestDeadlineFlushAndShutdown:
    """The serving-oriented extensions: timer flush, close semantics."""

    def test_timer_flushes_aged_requests(self):
        model = DeepSeq(ModelConfig(hidden=16, iterations=1, seed=0))
        graph, wl = make_pair(seed=20)
        with BatchedPredictor(
            model, batch_size=8, dtype=np.float64, max_latency_ms=20
        ) as predictor:
            handle = predictor.submit(graph, wl)
            # No explicit flush, batch nowhere near full: the deadline
            # timer must resolve the handle on its own.
            deadline = time.monotonic() + 5.0
            while not handle.done and time.monotonic() < deadline:
                time.sleep(0.005)
            assert handle.done
            np.testing.assert_array_equal(
                handle.result().tr, model.predict(graph, wl).tr
            )
            assert predictor.batches_flushed >= 1

    def test_timer_keeps_serving_a_trickle(self):
        model = DeepSeq(ModelConfig(hidden=16, iterations=1, seed=0))
        graph, wl = make_pair(seed=21)
        with BatchedPredictor(
            model, batch_size=8, dtype=np.float64, max_latency_ms=10
        ) as predictor:
            for _ in range(3):
                handle = predictor.submit(graph, wl)
                deadline = time.monotonic() + 5.0
                while not handle.done and time.monotonic() < deadline:
                    time.sleep(0.005)
                assert handle.done

    def test_close_flushes_pending_requests(self):
        model = DeepSeq(ModelConfig(hidden=16, iterations=1, seed=0))
        graph, wl = make_pair(seed=22)
        predictor = BatchedPredictor(model, batch_size=8, dtype=np.float64)
        handles = [predictor.submit(graph, wl) for _ in range(3)]
        predictor.close()
        assert all(h.done for h in handles)
        expected = model.predict(graph, wl)
        for h in handles:
            np.testing.assert_array_equal(h.result().tr, expected.tr)

    def test_close_without_flush_fails_pending_requests(self):
        model = DeepSeq(ModelConfig(hidden=16, iterations=1, seed=0))
        graph, wl = make_pair(seed=23)
        predictor = BatchedPredictor(model, batch_size=8, dtype=np.float64)
        handle = predictor.submit(graph, wl)
        predictor.close(flush=False)
        with pytest.raises(RuntimeError, match="closed"):
            handle.result()

    def test_submit_after_close_rejected(self):
        model = DeepSeq(ModelConfig(hidden=16, iterations=1, seed=0))
        graph, wl = make_pair(seed=24)
        predictor = BatchedPredictor(model, batch_size=2, dtype=np.float64)
        predictor.close()
        assert predictor.closed
        with pytest.raises(RuntimeError, match="closed"):
            predictor.submit(graph, wl)
        predictor.close()  # idempotent


class TestMemoryBudget:
    """Budgets move pack shape and resident rows, never output bits."""

    def test_predict_one_budget_bitwise(self):
        from repro.memory import MemoryBudget

        model = DeepSeq(ModelConfig(hidden=16, iterations=2, seed=0))
        graph, wl = make_pair(seed=31)
        ref = predict_one(model, graph, wl)
        got = predict_one(model, graph, wl, budget=MemoryBudget(plan_bytes=64))
        np.testing.assert_array_equal(ref.tr, got.tr)
        np.testing.assert_array_equal(ref.lg, got.lg)

    def test_predict_packed_budget_bitwise(self):
        from repro.memory import MemoryBudget

        model = DeepSeq(ModelConfig(hidden=16, iterations=2, seed=0))
        pairs = [make_pair(seed=s) for s in (41, 42, 43)]
        graphs = [g for g, _ in pairs]
        wls = [w for _, w in pairs]
        ref = predict_packed(model, graphs, wls)
        got = predict_packed(
            model, graphs, wls, budget=MemoryBudget(plan_bytes=64)
        )
        for a, b in zip(ref, got):
            np.testing.assert_array_equal(a.tr, b.tr)
            np.testing.assert_array_equal(a.lg, b.lg)

    def test_batched_predictor_budget_splits_packs_bitwise(self):
        from repro.memory import MemoryBudget
        from repro.runtime.plan import plan_for

        model = DeepSeq(ModelConfig(hidden=16, iterations=2, seed=0))
        pairs = [make_pair(seed=s) for s in (51, 52, 53, 54)]
        graphs = [g for g, _ in pairs]
        wls = [w for _, w in pairs]
        with BatchedPredictor(model, batch_size=4, dtype=np.float64) as ref_pred:
            ref = ref_pred.predict_many(graphs, wls)
        one = plan_for(graphs[0]).resident_bytes(
            model.use_custom_batches, np.float64
        )
        tight = BatchedPredictor(
            model,
            batch_size=4,
            dtype=np.float64,
            memory_budget=MemoryBudget(plan_bytes=one + one // 2),
        )
        with tight:
            got = tight.predict_many(graphs, wls)
        assert tight.batches_flushed > 1  # the budget split the pack
        for a, b in zip(ref, got):
            np.testing.assert_array_equal(a.tr, b.tr)
            np.testing.assert_array_equal(a.lg, b.lg)

    def test_budgeted_pack_always_admits_one_member(self):
        from repro.memory import MemoryBudget

        model = DeepSeq(ModelConfig(hidden=16, iterations=1, seed=0))
        graph, wl = make_pair(seed=61)
        with BatchedPredictor(
            model,
            batch_size=2,
            dtype=np.float64,
            memory_budget=MemoryBudget(plan_bytes=1),
        ) as predictor:
            assert predictor.predict(graph, wl).tr.shape[0] == graph.num_nodes
