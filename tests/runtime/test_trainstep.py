"""Packed training minibatches: pack_samples / make_minibatches / train_step."""

import numpy as np
import pytest

from repro.models.base import ModelConfig
from repro.models.registry import make_model
from repro.nn.optim import Adam
from repro.runtime.pack import clear_pack_cache
from repro.runtime.plan import clear_plan_cache
from repro.runtime.trainstep import make_minibatches, pack_samples, train_step

from tests.conftest import build_sample

CFG = ModelConfig(hidden=8, iterations=2, seed=0)


@pytest.fixture(autouse=True)
def fresh_caches():
    clear_plan_cache()
    clear_pack_cache()
    yield
    clear_plan_cache()
    clear_pack_cache()


def make_sample(seed: int, n_gates: int = 25):
    return build_sample(seed, n_gates)


@pytest.fixture(scope="module")
def samples():
    return [make_sample(seed) for seed in range(5)]


class TestPackSamples:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            pack_samples([])

    def test_single_sample_passthrough(self, samples):
        batch = pack_samples(samples[:1])
        assert batch.num_members == 1
        assert batch.num_nodes == samples[0].num_nodes
        assert batch.workload is samples[0].workload
        assert batch.target_tr is samples[0].target_tr

    def test_targets_concatenate_in_member_order(self, samples):
        batch = pack_samples(samples[:3])
        assert batch.num_members == 3
        assert batch.num_nodes == sum(s.num_nodes for s in samples[:3])
        for k, sample in enumerate(samples[:3]):
            sl = batch.member_slice(k)
            assert np.array_equal(batch.target_tr[sl], sample.target_tr)
            assert np.array_equal(batch.target_lg[sl], sample.target_lg)
        assert batch.workload.num_pis == sum(
            s.workload.num_pis for s in samples[:3]
        )
        assert batch.names == ("s0", "s1", "s2")

    def test_same_composition_reuses_cached_plan(self, samples):
        first = pack_samples(samples[:3])
        again = pack_samples(samples[:3])
        assert first.plan is again.plan


class TestMakeMinibatches:
    def test_partition_covers_dataset(self, samples):
        batches = make_minibatches(samples, 2, np.random.default_rng(0))
        assert sum(b.num_members for b in batches) == len(samples)
        assert sum(b.num_nodes for b in batches) == sum(
            s.num_nodes for s in samples
        )
        assert max(b.num_members for b in batches) <= 2
        names = sorted(n for b in batches for n in b.names)
        assert names == sorted(s.name for s in samples)

    def test_rng_shuffles_membership(self, samples):
        a = make_minibatches(samples, 2, np.random.default_rng(1))
        b = make_minibatches(samples, 2, None)
        assert [x.names for x in b] == [("s0", "s1"), ("s2", "s3"), ("s4",)]
        assert [x.names for x in a] != [x.names for x in b]


class TestTrainStep:
    def test_gradients_accumulate_until_cleared(self, samples):
        model = make_model("deepseq", CFG, "dual_attention")
        batch = pack_samples(samples[:2])
        model.zero_grad()
        train_step(model, batch)
        once = [p.grad.copy() for p in model.parameters()]
        train_step(model, batch)  # no zero_grad in between
        for p, g in zip(model.parameters(), once):
            np.testing.assert_allclose(p.grad, 2.0 * g, rtol=1e-12)

    def test_loss_scale_scales_gradients_not_losses(self, samples):
        model = make_model("deepseq", CFG, "dual_attention")
        batch = pack_samples(samples[:2])
        model.zero_grad()
        full = train_step(model, batch)
        grads = [p.grad.copy() for p in model.parameters()]
        model.zero_grad()
        halved = train_step(model, batch, loss_scale=0.5)
        assert halved.loss == full.loss
        for p, g in zip(model.parameters(), grads):
            np.testing.assert_allclose(p.grad, 0.5 * g, rtol=1e-12)

    def test_accumulated_group_matches_mean_gradient(self, samples):
        """G accumulated steps at 1/G == the mean of the solo gradients."""
        model = make_model("deepseq", CFG, "dual_attention")
        b1 = pack_samples(samples[:2])
        b2 = pack_samples(samples[2:4])
        solo = []
        for batch in (b1, b2):
            model.zero_grad()
            train_step(model, batch)
            solo.append([p.grad.copy() for p in model.parameters()])
        model.zero_grad()
        train_step(model, b1, loss_scale=0.5)
        train_step(model, b2, loss_scale=0.5)
        for i, p in enumerate(model.parameters()):
            np.testing.assert_allclose(
                p.grad, 0.5 * (solo[0][i] + solo[1][i]), rtol=1e-10, atol=1e-15
            )

    def test_weights_shape_objective(self, samples):
        model = make_model("deepseq", CFG, "dual_attention")
        batch = pack_samples(samples[:2])
        result = train_step(model, batch, tr_weight=2.0, lg_weight=0.5)
        assert result.loss == pytest.approx(
            2.0 * result.loss_tr + 0.5 * result.loss_lg, rel=1e-12
        )

    def test_step_trains(self, samples):
        model = make_model("deepseq", CFG, "dual_attention")
        opt = Adam(model.parameters(), lr=5e-3)
        batch = pack_samples(samples[:3])
        losses = []
        for _ in range(12):
            opt.zero_grad()
            losses.append(train_step(model, batch).loss)
            opt.step()
        assert losses[-1] < losses[0]
