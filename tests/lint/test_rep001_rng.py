"""REP001 fixtures: known-bad fires, clean passes, suppression silences."""

from __future__ import annotations


def _rules(result):
    return [f.rule for f in result.findings]


class TestRep001Fires:
    def test_module_level_np_random_call(self, lint_snippet):
        result = lint_snippet(
            """
            import numpy as np

            def draw(n):
                return np.random.rand(n)
            """
        )
        assert _rules(result) == ["REP001"]
        assert "np.random.rand" in result.findings[0].message

    def test_np_random_seed(self, lint_snippet):
        result = lint_snippet(
            """
            import numpy as np

            np.random.seed(0)
            """
        )
        assert _rules(result) == ["REP001"]

    def test_seedless_default_rng(self, lint_snippet):
        result = lint_snippet(
            """
            import numpy as np

            def fresh():
                return np.random.default_rng()
            """
        )
        assert _rules(result) == ["REP001"]
        assert "seedless" in result.findings[0].message

    def test_seedless_default_rng_from_import(self, lint_snippet):
        result = lint_snippet(
            """
            from numpy.random import default_rng

            RNG = default_rng()
            """
        )
        assert _rules(result) == ["REP001"]

    def test_none_seed_counts_as_seedless(self, lint_snippet):
        result = lint_snippet(
            """
            import numpy as np

            RNG = np.random.default_rng(None)
            """
        )
        assert _rules(result) == ["REP001"]

    def test_seedless_pcg64(self, lint_snippet):
        result = lint_snippet(
            """
            import numpy as np

            BITGEN = np.random.PCG64()
            """
        )
        assert _rules(result) == ["REP001"]

    def test_stdlib_random(self, lint_snippet):
        result = lint_snippet(
            """
            import random

            def flip():
                return random.random() < 0.5
            """
        )
        assert _rules(result) == ["REP001"]
        assert "Mersenne" in result.findings[0].message

    def test_stdlib_random_from_import(self, lint_snippet):
        result = lint_snippet(
            """
            from random import randint

            def roll():
                return randint(1, 6)
            """
        )
        assert _rules(result) == ["REP001"]


class TestRep001Clean:
    def test_seeded_default_rng(self, lint_snippet):
        result = lint_snippet(
            """
            import numpy as np

            def draw(seed, n):
                rng = np.random.default_rng(seed)
                return rng.random(n)
            """
        )
        assert result.findings == []

    def test_seed_sequence_and_spawn(self, lint_snippet):
        result = lint_snippet(
            """
            import numpy as np

            def children(seed, count):
                parent = np.random.SeedSequence(seed)
                return [np.random.default_rng(c) for c in parent.spawn(count)]
            """
        )
        assert result.findings == []

    def test_seeded_pcg64(self, lint_snippet):
        result = lint_snippet(
            """
            from numpy.random import PCG64, Generator

            def gen(seed):
                return Generator(PCG64(seed))
            """
        )
        assert result.findings == []

    def test_unrelated_random_attribute(self, lint_snippet):
        # `workload.random()` on some object is not the stdlib module.
        result = lint_snippet(
            """
            def run(workload):
                return workload.random.choice()
            """
        )
        assert result.findings == []


class TestRep001Suppressed:
    def test_same_line_suppression(self, lint_snippet):
        result = lint_snippet(
            """
            import numpy as np

            def noise(n):
                return np.random.rand(n)  # reprolint: disable=REP001 -- demo only
            """
        )
        assert result.findings == []
        assert result.suppressed == 1
