"""Fixtures for the reprolint test suite.

Fixture trees are built in ``tmp_path`` as miniature projects (their own
``pyproject.toml`` + source files) and linted through the real engine,
so every test exercises exactly the code path CI runs.  Snippets live in
strings here, not as checked-in ``.py`` files — the repo's own lint run
over ``tests/`` must not see the deliberately-bad fixtures.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.lint.config import load_config
from repro.lint.core import run_lint

#: pyproject block pointing every path-scoped rule at the fixture package,
#: so snippets exercise REP003/REP004 without mimicking the repo layout.
FIXTURE_TOML = """
[tool.reprolint]
paths = ["pkg"]
baseline = "baseline.json"
# Fixture trees have no cache module for REP005 to digest.
disable = ["REP005"]

[tool.reprolint.rep002]
allow = ["pkg/allowed_mp.py"]

[tool.reprolint.rep003]
modules = ["pkg/*.py"]

[tool.reprolint.rep004]
allow = ["pkg/allowed_shm.py"]
"""


@pytest.fixture
def make_project(tmp_path):
    """Build a throwaway project; returns its root."""

    def build(files: dict[str, str], toml: str = FIXTURE_TOML) -> Path:
        (tmp_path / "pyproject.toml").write_text(
            textwrap.dedent(toml), encoding="utf-8"
        )
        for rel, text in files.items():
            path = tmp_path / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(textwrap.dedent(text), encoding="utf-8")
        return tmp_path

    return build


@pytest.fixture
def lint_snippet(make_project):
    """Lint one snippet as ``pkg/mod.py``; returns the LintResult."""

    def run(code: str, filename: str = "pkg/mod.py", toml: str = FIXTURE_TOML):
        root = make_project({filename: code}, toml=toml)
        config = load_config(root)
        return run_lint(config)

    return run


def rules_fired(result) -> list[str]:
    return [f.rule for f in result.findings]
