"""REP003 fixtures: the guarded-attribute inference and race detection."""

from __future__ import annotations

_RACY_CLASS = """
import threading

class Queue:
    def __init__(self):
        self._lock = threading.Lock()
        self._items = []

    def push(self, item):
        with self._lock:
            self._items.append(item)
            self._items = list(self._items)

    def drain(self):
        items = self._items
        self._items = []
        return items
"""


def _rules(result):
    return [f.rule for f in result.findings]


class TestRep003Fires:
    def test_unlocked_read_and_write_flagged(self, lint_snippet):
        result = lint_snippet(_RACY_CLASS)
        assert _rules(result) == ["REP003", "REP003"]
        messages = [f.message for f in result.findings]
        assert any("read in Queue.drain" in m for m in messages)
        assert any("written in Queue.drain" in m for m in messages)

    def test_condition_guard_counts_as_lock(self, lint_snippet):
        result = lint_snippet(
            """
            import threading

            class Box:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._ready = threading.Condition(self._lock)
                    self._value = None

                def put(self, value):
                    with self._ready:
                        self._value = value
                        self._ready.notify()

                def peek(self):
                    return self._value
            """
        )
        assert _rules(result) == ["REP003"]
        assert "peek" in result.findings[0].message

    def test_closure_outside_lock_flagged(self, lint_snippet):
        result = lint_snippet(
            """
            import threading

            class Worker:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._count = 0

                def bump(self):
                    with self._lock:
                        self._count += 1

                def spawn(self):
                    def loop():
                        self._count += 1
                    return loop
            """
        )
        assert _rules(result) == ["REP003"]


class TestRep003Clean:
    def test_all_access_under_lock(self, lint_snippet):
        result = lint_snippet(
            """
            import threading

            class Queue:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = []

                def push(self, item):
                    with self._lock:
                        self._items.append(item)
                        self._items = list(self._items)

                def drain(self):
                    with self._lock:
                        items = self._items
                        self._items = []
                    return items
            """
        )
        assert result.findings == []

    def test_init_and_repr_exempt(self, lint_snippet):
        result = lint_snippet(
            """
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._n = 0

                def __repr__(self):
                    return f"Counter({self._n})"

                def bump(self):
                    with self._lock:
                        self._n += 1
            """
        )
        assert result.findings == []

    def test_lockless_class_ignored(self, lint_snippet):
        result = lint_snippet(
            """
            class Plain:
                def __init__(self):
                    self._items = []

                def push(self, item):
                    self._items.append(item)
            """
        )
        assert result.findings == []

    def test_rule_scoped_to_configured_modules(self, lint_snippet):
        # Same racy class outside the configured module globs: no finding.
        result = lint_snippet(
            _RACY_CLASS,
            filename="other/not_threaded.py",
            toml="""
            [tool.reprolint]
            paths = ["other"]
            disable = ["REP005"]

            [tool.reprolint.rep003]
            modules = ["pkg/*.py"]
            """,
        )
        assert result.findings == []


class TestRep003Suppressed:
    def test_suppressed_monotonic_flag_read(self, lint_snippet):
        result = lint_snippet(
            """
            import threading

            class Server:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._closed = False

                def close(self):
                    with self._lock:
                        self._closed = True

                @property
                def closed(self):
                    return self._closed  # reprolint: disable=REP003 -- monotonic flag
            """
        )
        assert result.findings == []
        assert result.suppressed == 1
