"""REP004 fixtures: /dev/shm hygiene."""

from __future__ import annotations


def _rules(result):
    return [f.rule for f in result.findings]


class TestRep004Fires:
    def test_raw_shared_memory_create(self, lint_snippet):
        result = lint_snippet(
            """
            from multiprocessing import shared_memory

            def arena(nbytes):
                return shared_memory.SharedMemory(create=True, size=nbytes)
            """
        )
        assert _rules(result) == ["REP004"]
        assert "ShmBlock.create" in result.findings[0].message

    def test_discarded_create_result(self, lint_snippet):
        result = lint_snippet(
            """
            from repro.runtime.shm import ShmBlock

            def warm():
                ShmBlock.create(1024)
            """
        )
        assert _rules(result) == ["REP004"]
        assert "discarded" in result.findings[0].message

    def test_bound_but_never_closed(self, lint_snippet):
        result = lint_snippet(
            """
            from repro.runtime.shm import ShmBlock

            def leaky(nbytes):
                block = ShmBlock.create(nbytes)
                return block.name
            """
        )
        assert _rules(result) == ["REP004"]
        assert "no visible close()/unlink()" in result.findings[0].message


class TestRep004Clean:
    def test_attach_is_fine(self, lint_snippet):
        result = lint_snippet(
            """
            from multiprocessing import shared_memory

            def attach(name):
                return shared_memory.SharedMemory(name=name)
            """
        )
        assert result.findings == []

    def test_create_with_unlink_path(self, lint_snippet):
        result = lint_snippet(
            """
            from repro.runtime.shm import ShmBlock

            def roundtrip(nbytes):
                block = ShmBlock.create(nbytes)
                try:
                    return block.size
                finally:
                    block.close()
                    block.unlink()
            """
        )
        assert result.findings == []

    def test_returned_block_is_callers_problem(self, lint_snippet):
        result = lint_snippet(
            """
            from repro.runtime.shm import ShmBlock

            def arena(nbytes):
                block = ShmBlock.create(nbytes)
                return block
            """
        )
        assert result.findings == []

    def test_stored_on_self_escapes(self, lint_snippet):
        result = lint_snippet(
            """
            from repro.runtime.shm import ShmBlock

            class Owner:
                def open(self, nbytes):
                    self.block = ShmBlock.create(nbytes)
            """
        )
        assert result.findings == []

    def test_allowed_module_exempt(self, lint_snippet):
        result = lint_snippet(
            """
            from multiprocessing import shared_memory

            def create(name, nbytes):
                return shared_memory.SharedMemory(
                    name=name, create=True, size=nbytes
                )
            """,
            filename="pkg/allowed_shm.py",
        )
        assert result.findings == []


class TestRep004Suppressed:
    def test_suppressed_with_reason(self, lint_snippet):
        result = lint_snippet(
            """
            from multiprocessing import shared_memory

            def probe(nbytes):
                # reprolint: disable=REP004 -- capability probe, unlinked by caller
                return shared_memory.SharedMemory(create=True, size=nbytes)
            """
        )
        assert result.findings == []
        assert result.suppressed == 1
