"""REP006 fixtures: id()-keyed mappings (the pre-PR-1 bug class)."""

from __future__ import annotations


def _rules(result):
    return [f.rule for f in result.findings]


class TestRep006Fires:
    def test_direct_subscript(self, lint_snippet):
        result = lint_snippet(
            """
            _CACHE = {}

            def plan_for(model):
                _CACHE[id(model)] = compile_plan(model)
            """
        )
        assert _rules(result) == ["REP006"]

    def test_get_and_setdefault(self, lint_snippet):
        result = lint_snippet(
            """
            _CACHE = {}

            def plan_for(model):
                hit = _CACHE.get(id(model))
                if hit is None:
                    hit = _CACHE.setdefault(id(model), compile_plan(model))
                return hit
            """
        )
        assert _rules(result) == ["REP006", "REP006"]

    def test_containment_test(self, lint_snippet):
        result = lint_snippet(
            """
            _SEEN = {}

            def seen(model):
                return id(model) in _SEEN
            """
        )
        assert _rules(result) == ["REP006"]

    def test_dict_comprehension_key(self, lint_snippet):
        result = lint_snippet(
            """
            def index(models):
                return {id(m): m for m in models}
            """
        )
        assert _rules(result) == ["REP006"]

    def test_one_hop_local_alias(self, lint_snippet):
        # The exact shape of the pre-PR-1 bug: key = id(x); cache[key].
        result = lint_snippet(
            """
            _CACHE = {}

            def plan_for(model):
                key = id(model)
                if key in _CACHE:
                    return _CACHE[key]
                _CACHE[key] = compile_plan(model)
                return _CACHE[key]
            """
        )
        assert len(_rules(result)) == 4
        assert set(_rules(result)) == {"REP006"}


class TestRep006Clean:
    def test_fingerprint_keyed_cache(self, lint_snippet):
        result = lint_snippet(
            """
            _CACHE = {}

            def plan_for(model):
                key = model.fingerprint()
                if key not in _CACHE:
                    _CACHE[key] = compile_plan(model)
                return _CACHE[key]
            """
        )
        assert result.findings == []

    def test_id_for_logging_only(self, lint_snippet):
        result = lint_snippet(
            """
            def describe(model):
                return f"model@{id(model)}"
            """
        )
        assert result.findings == []

    def test_alias_scope_is_per_function(self, lint_snippet):
        # `key` is id-derived in another function; this one is clean.
        result = lint_snippet(
            """
            _CACHE = {}

            def tag(model):
                key = id(model)
                return key

            def lookup(key):
                return _CACHE[key]
            """
        )
        assert result.findings == []


class TestRep006Suppressed:
    def test_suppressed_transient_store(self, lint_snippet):
        result = lint_snippet(
            """
            def topo(root):
                seen = {}
                stack = [root]
                while stack:
                    node = stack.pop()
                    seen[id(node)] = node  # reprolint: disable=REP006 -- nodes pinned by stack
                    stack.extend(node.parents)
                return seen
            """
        )
        assert result.findings == []
        assert result.suppressed == 1
