"""REP005 fixtures: cache-key drift vs CACHE_VERSION, incl. the mutation
test proving that adding a SimConfig field without bumping CACHE_VERSION
is caught (and makes the CLI exit nonzero)."""

from __future__ import annotations

import textwrap

from repro.lint.cli import main
from repro.lint.config import load_config
from repro.lint.core import run_lint
from repro.lint.rules.cachekey import update_manifest

_TOML = """
[tool.reprolint]
paths = ["mini"]
baseline = "baseline.json"

[tool.reprolint.rep005]
manifest = "manifest.json"
cache_module = "mini/cache.py"
version_name = "CACHE_VERSION"
key_function = "label_key"
dataclasses = [
    "mini/sim.py::SimConfig",
    "mini/sim.py::FaultConfig",
    "mini/sim.py::Workload",
]
"""

_SIM = """
from dataclasses import dataclass

@dataclass(frozen=True)
class SimConfig:
    \"\"\"Run parameters.\"\"\"

    cycles: int = 156
    streams: int = 64
    seed: int = 0

@dataclass(frozen=True)
class FaultConfig:
    fault_rate: float = 5e-4
    seed: int = 1

@dataclass(frozen=True)
class Workload:
    name: str = "w"
    seed: int = 0
"""

_CACHE = """
import hashlib

CACHE_VERSION = "mini-v1"

def label_key(kind, fingerprint, workload, sim_config):
    \"\"\"Digest of everything the labels depend on.\"\"\"
    h = hashlib.sha256()
    for part in (CACHE_VERSION, kind, fingerprint, str(workload.seed),
                 str(sim_config.cycles), str(sim_config.streams),
                 str(sim_config.seed)):
        h.update(part.encode())
    return h.hexdigest()
"""


def _build(make_project):
    root = make_project({"mini/sim.py": _SIM, "mini/cache.py": _CACHE}, toml=_TOML)
    update_manifest(load_config(root))
    return root


def _rep005(root):
    result = run_lint(load_config(root))
    return [f for f in result.findings if f.rule == "REP005"]


def _rewrite(root, rel, old, new):
    path = root / rel
    text = path.read_text()
    assert old in text
    path.write_text(text.replace(old, new))


class TestRep005CleanTree:
    def test_fresh_manifest_is_clean(self, make_project):
        root = _build(make_project)
        assert _rep005(root) == []

    def test_comment_and_docstring_edits_do_not_fire(self, make_project):
        root = _build(make_project)
        _rewrite(root, "mini/sim.py", '"""Run parameters."""', '"""Changed doc."""')
        _rewrite(
            root,
            "mini/cache.py",
            "import hashlib",
            "import hashlib  # formatting-only edit",
        )
        assert _rep005(root) == []


class TestRep005Mutation:
    def test_added_field_without_bump_is_caught(self, make_project):
        root = _build(make_project)
        _rewrite(
            root,
            "mini/sim.py",
            "    streams: int = 64",
            "    streams: int = 64\n    warmup: int = 8",
        )
        findings = _rep005(root)
        assert len(findings) == 1
        assert "CACHE_VERSION" in findings[0].message
        assert "Bump CACHE_VERSION" in findings[0].message
        # anchored at the CACHE_VERSION assignment in the cache module
        assert findings[0].path == "mini/cache.py"
        assert findings[0].line > 0

    def test_added_field_without_bump_fails_cli(self, make_project, capsys):
        root = _build(make_project)
        _rewrite(
            root,
            "mini/sim.py",
            "    streams: int = 64",
            "    streams: int = 64\n    warmup: int = 8",
        )
        exit_code = main(["--root", str(root)])
        assert exit_code == 1
        assert "REP005" in capsys.readouterr().out

    def test_label_key_body_change_without_bump_is_caught(self, make_project):
        root = _build(make_project)
        _rewrite(
            root,
            "mini/cache.py",
            "str(sim_config.seed))",
            "str(sim_config.seed), sim_config.init_state)",
        )
        findings = _rep005(root)
        assert len(findings) == 1
        assert "Bump CACHE_VERSION" in findings[0].message

    def test_bump_plus_manifest_regen_is_clean(self, make_project):
        root = _build(make_project)
        _rewrite(
            root,
            "mini/sim.py",
            "    streams: int = 64",
            "    streams: int = 64\n    warmup: int = 8",
        )
        _rewrite(root, "mini/cache.py", '"mini-v1"', '"mini-v2"')
        findings = _rep005(root)
        assert len(findings) == 1
        assert "regenerate" in findings[0].message
        update_manifest(load_config(root))
        assert _rep005(root) == []

    def test_version_bump_alone_demands_regen(self, make_project):
        root = _build(make_project)
        _rewrite(root, "mini/cache.py", '"mini-v1"', '"mini-v2"')
        findings = _rep005(root)
        assert len(findings) == 1
        assert "regenerate" in findings[0].message

    def test_missing_manifest_is_a_finding(self, make_project):
        root = _build(make_project)
        (root / "manifest.json").unlink()
        findings = _rep005(root)
        assert len(findings) == 1
        assert "manifest missing" in findings[0].message

    def test_update_cache_manifest_cli(self, make_project, capsys):
        root = _build(make_project)
        (root / "manifest.json").unlink()
        assert main(["--root", str(root), "--update-cache-manifest"]) == 0
        assert (root / "manifest.json").is_file()
        assert _rep005(root) == []


class TestRep005Suppressed:
    def test_suppression_on_version_line(self, make_project):
        root = _build(make_project)
        _rewrite(
            root,
            "mini/sim.py",
            "    streams: int = 64",
            "    streams: int = 64\n    warmup: int = 8",
        )
        _rewrite(
            root,
            "mini/cache.py",
            'CACHE_VERSION = "mini-v1"',
            'CACHE_VERSION = "mini-v1"  # reprolint: disable=REP005 -- migration window',
        )
        result = run_lint(load_config(root))
        assert [f for f in result.findings if f.rule == "REP005"] == []
        assert result.suppressed >= 1
