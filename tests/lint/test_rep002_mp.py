"""REP002 fixtures: pools/processes must route through resolve_mp_context."""

from __future__ import annotations


def _rules(result):
    return [f.rule for f in result.findings]


class TestRep002Fires:
    def test_executor_without_mp_context(self, lint_snippet):
        result = lint_snippet(
            """
            from concurrent.futures import ProcessPoolExecutor

            def fan_out(jobs):
                with ProcessPoolExecutor(max_workers=4) as pool:
                    return list(pool.map(len, jobs))
            """
        )
        assert _rules(result) == ["REP002"]
        assert "mp_context" in result.findings[0].message

    def test_raw_multiprocessing_pool(self, lint_snippet):
        result = lint_snippet(
            """
            import multiprocessing

            def fan_out(jobs):
                with multiprocessing.Pool(4) as pool:
                    return pool.map(len, jobs)
            """
        )
        assert _rules(result) == ["REP002"]

    def test_raw_process_via_alias(self, lint_snippet):
        result = lint_snippet(
            """
            import multiprocessing as mp

            def start(target):
                proc = mp.Process(target=target)
                proc.start()
                return proc
            """
        )
        assert _rules(result) == ["REP002"]

    def test_get_context_banned_outside_mp_module(self, lint_snippet):
        result = lint_snippet(
            """
            import multiprocessing

            def ctx():
                return multiprocessing.get_context("spawn")
            """
        )
        assert _rules(result) == ["REP002"]
        assert "resolve_mp_context" in result.findings[0].message

    def test_set_start_method(self, lint_snippet):
        result = lint_snippet(
            """
            import multiprocessing

            multiprocessing.set_start_method("fork")
            """
        )
        assert _rules(result) == ["REP002"]


class TestRep002Clean:
    def test_executor_with_resolved_context(self, lint_snippet):
        result = lint_snippet(
            """
            from concurrent.futures import ProcessPoolExecutor
            from repro.runtime.mp import resolve_mp_context

            def fan_out(jobs, method=None):
                with ProcessPoolExecutor(
                    max_workers=4, mp_context=resolve_mp_context(method)
                ) as pool:
                    return list(pool.map(len, jobs))
            """
        )
        assert result.findings == []

    def test_process_on_resolved_context(self, lint_snippet):
        result = lint_snippet(
            """
            from repro.runtime.mp import resolve_mp_context

            def start(target):
                ctx = resolve_mp_context()
                proc = ctx.Process(target=target)
                proc.start()
                return proc
            """
        )
        assert result.findings == []

    def test_allowed_module_exempt(self, lint_snippet):
        # The sanctioned mp module itself may call get_context.
        result = lint_snippet(
            """
            import multiprocessing

            def resolve(method):
                return multiprocessing.get_context(method)
            """,
            filename="pkg/allowed_mp.py",
        )
        assert result.findings == []


class TestRep002Suppressed:
    def test_suppression_with_reason(self, lint_snippet):
        result = lint_snippet(
            """
            import multiprocessing

            def fork_ctx():
                # reprolint: disable=REP002 -- single-threaded bootstrap owns the fork proof
                return multiprocessing.get_context("fork")
            """
        )
        assert result.findings == []
        assert result.suppressed == 1
