"""Engine-level tests: suppressions, baseline semantics, CLI, config."""

from __future__ import annotations

import json

import pytest

from repro.lint.baseline import Baseline, load_baseline, partition, write_baseline
from repro.lint.cli import main
from repro.lint.config import DEFAULTS, load_config
from repro.lint.core import Finding, run_lint

_BAD = """
import numpy as np

def draw(n):
    return np.random.rand(n)
"""


class TestSuppressions:
    def test_own_line_comment_above(self, lint_snippet):
        result = lint_snippet(
            """
            import numpy as np

            def draw(n):
                # reprolint: disable=REP001 -- fixture
                return np.random.rand(n)
            """
        )
        assert result.findings == []
        assert result.suppressed == 1

    def test_disable_all(self, lint_snippet):
        result = lint_snippet(
            """
            import numpy as np

            def draw(n):
                return np.random.rand(n)  # reprolint: disable=all -- fixture
            """
        )
        assert result.findings == []

    def test_wrong_rule_id_does_not_silence(self, lint_snippet):
        result = lint_snippet(
            """
            import numpy as np

            def draw(n):
                return np.random.rand(n)  # reprolint: disable=REP002 -- wrong id
            """
        )
        assert [f.rule for f in result.findings] == ["REP001"]

    def test_directive_above_code_line_scopes_to_that_line(self, lint_snippet):
        # A directive trailing *code* on the previous line must not leak
        # onto the next line.
        result = lint_snippet(
            """
            import numpy as np

            def draw(n):
                a = np.random.rand(n)  # reprolint: disable=REP001 -- this line only
                b = np.random.rand(n)
                return a + b
            """
        )
        assert len(result.findings) == 1
        assert result.suppressed == 1


class TestBaseline:
    def test_partition_multiset(self):
        f = Finding(rule="REP001", path="a.py", line=3, col=0, message="m")
        dup = Finding(rule="REP001", path="a.py", line=9, col=0, message="m")
        base = Baseline(findings=[f])
        new, known = partition([f, dup], base)
        assert len(known) == 1 and len(new) == 1

    def test_line_drift_does_not_churn(self, tmp_path):
        f = Finding(rule="REP001", path="a.py", line=3, col=0, message="m")
        write_baseline(tmp_path / "b.json", [f])
        moved = Finding(rule="REP001", path="a.py", line=30, col=7, message="m")
        new, known = partition([moved], load_baseline(tmp_path / "b.json"))
        assert new == [] and len(known) == 1

    def test_missing_file_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "nope.json").findings == []

    def test_baselined_finding_exits_zero(self, make_project, capsys):
        root = make_project({"pkg/mod.py": _BAD})
        assert main(["--root", str(root)]) == 1
        assert main(["--root", str(root), "--write-baseline"]) == 0
        capsys.readouterr()
        assert main(["--root", str(root)]) == 0
        out = capsys.readouterr().out
        assert "1 baselined" in out


class TestCli:
    def test_clean_tree_exits_zero(self, make_project, capsys):
        root = make_project({"pkg/mod.py": "x = 1\n"})
        assert main(["--root", str(root)]) == 0

    def test_new_finding_exits_one(self, make_project, capsys):
        root = make_project({"pkg/mod.py": _BAD})
        assert main(["--root", str(root)]) == 1
        out = capsys.readouterr().out
        assert "REP001" in out and "pkg/mod.py:5" in out

    def test_json_format_and_output_file(self, make_project, capsys):
        root = make_project({"pkg/mod.py": _BAD})
        report_path = root / "report.json"
        code = main(
            [
                "--root",
                str(root),
                "--format",
                "json",
                "--output",
                str(report_path),
            ]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "reprolint-report-v1"
        assert payload["exit_code"] == 1
        assert payload["new"][0]["rule"] == "REP001"
        on_disk = json.loads(report_path.read_text())
        assert on_disk == payload

    def test_disable_flag(self, make_project):
        root = make_project({"pkg/mod.py": _BAD})
        assert main(["--root", str(root), "--disable", "REP001"]) == 0

    def test_syntax_error_is_a_finding(self, make_project, capsys):
        root = make_project({"pkg/mod.py": "def broken(:\n"})
        assert main(["--root", str(root)]) == 1
        assert "REP000" in capsys.readouterr().out

    def test_explicit_paths_override_config(self, make_project):
        root = make_project(
            {"pkg/mod.py": "x = 1\n", "elsewhere/bad.py": _BAD}
        )
        assert main(["--root", str(root)]) == 0
        assert main(["--root", str(root), "elsewhere"]) == 1

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("REP001", "REP002", "REP003", "REP004", "REP005", "REP006"):
            assert rule_id in out

    def test_missing_path_is_usage_error(self, make_project, capsys):
        root = make_project({"pkg/mod.py": "x = 1\n"})
        assert main(["--root", str(root), "does-not-exist"]) == 2


class TestConfig:
    def test_defaults_without_pyproject(self, tmp_path):
        config = load_config(tmp_path)
        assert config.paths == DEFAULTS["paths"]
        assert config.rule_option("REP004", "allow") == DEFAULTS["rep004"]["allow"]

    def test_table_overrides_merge_over_defaults(self, make_project):
        root = make_project(
            {"pkg/mod.py": "x = 1\n"},
            toml="""
            [tool.reprolint]
            paths = ["pkg"]
            disable = ["rep006"]

            [tool.reprolint.rep004]
            allow = ["pkg/special.py"]
            """,
        )
        config = load_config(root)
        assert config.paths == ["pkg"]
        assert config.disable == ["REP006"]
        assert config.rule_option("REP004", "allow") == ["pkg/special.py"]
        # untouched rule tables still fall back to defaults
        assert config.rule_option("REP005", "version_name") == "CACHE_VERSION"

    def test_config_disable_skips_rule(self, make_project):
        root = make_project(
            {"pkg/mod.py": _BAD},
            toml="""
            [tool.reprolint]
            paths = ["pkg"]
            disable = ["REP001", "REP005"]
            """,
        )
        config = load_config(root)
        assert run_lint(config).findings == []

    def test_exclude_globs(self, make_project):
        root = make_project(
            {"pkg/mod.py": _BAD},
            toml="""
            [tool.reprolint]
            paths = ["pkg"]
            disable = ["REP005"]
            exclude = ["pkg/mod.py"]
            """,
        )
        config = load_config(root)
        result = run_lint(config)
        assert result.findings == [] and result.files_checked == 0


class TestPyprojectBlockIsCanonical:
    def test_repo_config_matches_defaults(self, repo_root):
        """The committed [tool.reprolint] block and DEFAULTS must agree,
        or the CLI-from-anywhere and CI-from-root behaviors diverge."""
        config = load_config(repo_root)
        assert config.paths == DEFAULTS["paths"]
        assert config.baseline == DEFAULTS["baseline"]
        for rule_id in ("rep002", "rep003", "rep004", "rep005"):
            for key, value in DEFAULTS[rule_id].items():
                assert config.rule_option(rule_id, key) == value


@pytest.fixture
def repo_root():
    from pathlib import Path

    return Path(__file__).resolve().parents[2]
