"""The acceptance gate, as a test: the repo's own tree lints clean.

``python -m repro.lint src tests benchmarks`` must exit 0 with an empty
baseline.  Running it inside the tier-1 suite means a PR that introduces
a violation fails the ordinary test run too, not just the CI lint job.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.lint.baseline import load_baseline
from repro.lint.cli import main
from repro.lint.config import load_config
from repro.lint.core import run_lint

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture(scope="module")
def repo_result():
    config = load_config(REPO_ROOT)
    return run_lint(config)


def test_repo_tree_is_clean(repo_result):
    rendered = "\n".join(f.render() for f in repo_result.all_findings)
    assert repo_result.all_findings == [], f"new reprolint findings:\n{rendered}"


def test_whole_tree_was_walked(repo_result):
    # src + tests + benchmarks is a ~200-file tree; a collapse here means
    # the path config broke and the clean result above is vacuous.
    assert repo_result.files_checked > 150


def test_committed_baseline_is_empty():
    config = load_config(REPO_ROOT)
    baseline = load_baseline(config.baseline_path)
    assert baseline.findings == [], (
        "the committed baseline must stay empty: fix findings or "
        "suppress them in-line with a reason"
    )


def test_cli_exit_zero_on_repo(capsys, monkeypatch):
    monkeypatch.chdir(REPO_ROOT)
    assert main(["src", "tests", "benchmarks"]) == 0
    assert "0 new finding(s)" in capsys.readouterr().out


def test_cache_key_manifest_is_current():
    """The committed REP005 manifest matches the tree (fails when someone
    edits SimConfig/FaultConfig/Workload/label_key without the bump+regen
    workflow)."""
    from repro.lint.rules.cachekey import compute_cache_key_state, load_manifest

    config = load_config(REPO_ROOT)
    state = compute_cache_key_state(config)
    manifest = load_manifest(config)
    assert manifest is not None, "run: python -m repro.lint --update-cache-manifest"
    assert manifest["digest"] == state["digest"]
    assert manifest["cache_version"] == state["cache_version"]
