"""Cross-module integration tests.

Exercise the public API the way a downstream user would: checkpointing a
fine-tuned model and getting identical downstream estimates, feeding
``.bench`` files through the whole pipeline, and chaining strash into
training.
"""

import numpy as np
import pytest

from repro.circuit import (
    CircuitGraph,
    GateType,
    family_subcircuits,
    parse_bench,
    to_aig,
    write_bench,
)
from repro.models import DeepSeq, ModelConfig
from repro.nn import load_module, save_module
from repro.sim import SimConfig, random_workload, simulate
from repro.tasks.power import run_power_pipeline
from repro.train import CircuitSample, TrainConfig, Trainer

SIM = SimConfig(cycles=50, streams=64, seed=1)
CFG = ModelConfig(hidden=12, iterations=2, seed=0)


class TestCheckpointedPipeline:
    def test_power_estimate_survives_checkpoint(self, tmp_path):
        nl = family_subcircuits("opencores", 1, seed=40)[0]
        wl = random_workload(nl, 2)
        labels = simulate(nl, wl, SIM)
        model = DeepSeq(CFG)
        sample = CircuitSample(
            CircuitGraph(nl), wl, labels.transition_prob, labels.logic_prob
        )
        Trainer(TrainConfig(epochs=3, lr=5e-3)).train(model, [sample])

        cmp_before = run_power_pipeline(nl, wl, deepseq=model, sim_config=SIM)
        path = tmp_path / "deepseq.npz"
        save_module(model, path)
        fresh = DeepSeq(ModelConfig(hidden=12, iterations=2, seed=99))
        load_module(fresh, path)
        cmp_after = run_power_pipeline(nl, wl, deepseq=fresh, sim_config=SIM)
        assert cmp_after.method("deepseq").power_mw == pytest.approx(
            cmp_before.method("deepseq").power_mw
        )


class TestBenchFileRoundTripPipeline:
    def test_bench_text_through_full_flow(self):
        """Serialize a generated circuit to .bench, parse it back, lower
        it, and verify the whole learning + simulation stack accepts it."""
        original = family_subcircuits("iscas89", 1, seed=41, as_aig=False)[0]
        reparsed = parse_bench(write_bench(original), "roundtrip")
        mapping = to_aig(reparsed)
        graph = CircuitGraph(mapping.aig)
        wl = random_workload(mapping.aig, 3)
        labels = simulate(mapping.aig, wl, SIM)
        model = DeepSeq(CFG)
        pred = model.predict(graph, wl)
        assert pred.lg.shape == labels.logic_prob.shape

    def test_simulation_equivalence_through_serialization(self):
        original = family_subcircuits("itc99", 1, seed=42, as_aig=False)[0]
        reparsed = parse_bench(write_bench(original), "rt")
        wl = random_workload(original, 5)
        a = simulate(original, wl, SIM)
        b = simulate(reparsed, wl, SIM)
        assert np.allclose(a.logic_prob, b.logic_prob)
        assert np.allclose(a.tr01_prob, b.tr01_prob)


class TestStrashIntoTraining:
    def test_training_on_hashed_circuits(self):
        from repro.circuit.aig import strash

        circuits = [
            strash(nl).aig for nl in family_subcircuits("opencores", 2, seed=43)
        ]
        from repro.train import build_dataset, evaluate

        ds = build_dataset(circuits, SIM, seed=0)
        model = DeepSeq(CFG)
        hist = Trainer(TrainConfig(epochs=3, lr=5e-3, batch_size=2)).train(
            model, ds
        )
        assert hist[-1].loss < hist[0].loss
        ev = evaluate(model, ds)
        assert 0 <= ev.pe_tr <= 1


class TestWorkloadSensitivity:
    def test_gt_power_tracks_activity(self):
        """More PI activity -> more switching -> more dynamic power."""
        nl = family_subcircuits("opencores", 1, seed=44)[0]
        quiet = run_power_pipeline(
            nl,
            _const_workload(nl, 0.02),
            sim_config=SIM,
        )
        busy = run_power_pipeline(
            nl,
            _const_workload(nl, 0.5),
            sim_config=SIM,
        )
        assert busy.gt_mw > quiet.gt_mw


def _const_workload(nl, p):
    from repro.sim.workload import Workload

    return Workload(np.full(len(nl.pis), p), f"const{p}", seed=0)
