"""Multi-process gateway: correctness, faults, and resource hygiene.

The gateway's contract extends the threaded server's with process-level
failure modes, so these tests cover three axes:

* **equivalence** — float64 predictions served through the socket are
  bitwise-equal to sequential ``predict`` on the source model (the
  replica npz round-trip, the shared-memory feature path and the pickle
  response transport must all be exact);
* **faults** — a SIGKILLed worker fails its in-flight requests with the
  typed :class:`WorkerDied` (never a hang), is respawned, and the
  restarted slot serves again; responses are never cross-wired across
  the failure;
* **hygiene** — every ``repro-shm-*`` segment the gateway creates is gone
  from ``/dev/shm`` after close, including after worker kills.

Spawning worker processes costs real seconds, so the traffic tests share
one module-scoped gateway; lifecycle tests build their own.
"""

import json
import os
import signal
import time
import urllib.request
from pathlib import Path

import numpy as np
import pytest

from repro.models.base import ModelConfig
from repro.models.deepseq import DeepSeq
from repro.runtime.shm import SHM_PREFIX
from repro.serve import (
    DeadlineExceeded,
    Gateway,
    QueueFull,
    ServerClosed,
    WorkerDied,
)

from tests.conftest import build_pair

MODEL = DeepSeq(ModelConfig(hidden=12, iterations=2, seed=0))


def shm_entries():
    root = Path("/dev/shm")
    if not root.is_dir():  # pragma: no cover - non-Linux
        return set()
    return {p.name for p in root.glob(f"{SHM_PREFIX}*")}


@pytest.fixture(scope="module")
def problem_set():
    """8 distinct (netlist, workload) pairs plus sequential expectations."""
    pairs = [
        build_pair(seed=s, n_dffs=s % 3, n_gates=16 + 3 * s) for s in range(8)
    ]
    expected = [MODEL.predict(g, w) for g, w in pairs]
    return [(g.netlist, w) for g, w in pairs], expected


@pytest.fixture(scope="module")
def gateway():
    gw = Gateway(
        MODEL,
        workers=2,
        batch_size=4,
        max_latency_ms=5.0,
        restart_backoff_ms=20.0,
        dtype="float64",
    )
    yield gw
    gw.close()


class TestBitwiseThroughSocket:
    def test_single_request_bitwise(self, gateway, problem_set):
        pairs, expected = problem_set
        with gateway.connect() as client:
            pred = client.predict(*pairs[0])
        np.testing.assert_array_equal(expected[0].tr, pred.tr)
        np.testing.assert_array_equal(expected[0].lg, pred.lg)

    def test_many_clients_no_crosswiring(self, gateway, problem_set):
        """Interleaved submissions from several connections: every result
        matches *its own* circuit's sequential prediction bitwise."""
        pairs, expected = problem_set
        clients = [gateway.connect() for _ in range(3)]
        try:
            futures = []
            for i in range(36):
                cid = i % len(clients)
                idx = (i * 5 + cid) % len(pairs)
                futures.append((idx, clients[cid].submit(*pairs[idx])))
            for idx, fut in futures:
                res = fut.result(timeout=120)
                np.testing.assert_array_equal(expected[idx].tr, res.tr)
                np.testing.assert_array_equal(expected[idx].lg, res.lg)
        finally:
            for c in clients:
                c.close()

    def test_predict_many_in_order(self, gateway, problem_set):
        pairs, expected = problem_set
        idxs = [3, 0, 5, 1, 3, 7]
        with gateway.connect() as client:
            results = client.predict_many(
                [pairs[i][0] for i in idxs], [pairs[i][1] for i in idxs]
            )
        for idx, res in zip(idxs, results):
            np.testing.assert_array_equal(expected[idx].tr, res.tr)


class TestProtocolSurface:
    def test_ping(self, gateway):
        with gateway.connect() as client:
            assert client.ping()

    def test_metrics_over_socket(self, gateway, problem_set):
        pairs, _ = problem_set
        with gateway.connect() as client:
            client.predict(*pairs[0])
            snap = client.metrics()
        assert snap["completed"] >= 1
        assert "e2e_ms" in snap and "worker_deaths" in snap

    def test_http_get_metrics(self, gateway, problem_set):
        pairs, _ = problem_set
        with gateway.connect() as client:
            client.predict(*pairs[1])
        url = "http://%s:%d/metrics" % gateway.address
        body = urllib.request.urlopen(url, timeout=30).read()
        snap = json.loads(body)
        assert snap["completed"] >= 1
        assert snap["submitted"] >= snap["completed"]

    def test_http_unknown_path_404(self, gateway):
        url = "http://%s:%d/nope" % gateway.address
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(url, timeout=30)
        assert err.value.code == 404

    def test_pi_mismatch_raises_client_side(self, gateway, problem_set):
        pairs, _ = problem_set
        (nl0, _), (_, wl1) = pairs[0], pairs[4]
        if len(nl0.pis) != wl1.num_pis:
            with pytest.raises(ValueError):
                gateway.connect().submit(nl0, wl1)

    def test_warm_acks_and_serves(self, gateway, problem_set):
        """warm() must round-trip the worker ack quickly (a missing ack
        burns the full warm timeout) and leave the gateway serving."""
        pairs, expected = problem_set
        t0 = time.monotonic()
        gateway.warm(pairs[2][0])
        assert time.monotonic() - t0 < 60.0
        with gateway.connect() as client:
            res = client.predict(*pairs[2])
        np.testing.assert_array_equal(expected[2].tr, res.tr)

    def test_deadline_exceeded_typed_through_socket(self, gateway, problem_set):
        pairs, _ = problem_set
        with gateway.connect() as client:
            fut = client.submit(*pairs[0], deadline_ms=0.0001)
            exc = fut.exception(timeout=60)
        assert exc is None or isinstance(exc, DeadlineExceeded)


class TestWorkerFaults:
    def test_sigkill_fails_typed_restarts_and_serves(self, gateway, problem_set):
        """SIGKILL one worker under load: every future resolves (typed
        WorkerDied or a bitwise-correct result — no hangs, no cross-wired
        responses), the slot respawns, and the gateway serves afterwards."""
        pairs, expected = problem_set
        deaths_before = gateway.metrics.count("worker_deaths")
        with gateway.connect() as client:
            client.predict(*pairs[0])  # ensure workers are warm
            victim = next(h for h in gateway.supervisor.handles if h.alive)
            victim_pid = victim.proc.pid
            futures = [
                (i % len(pairs), client.submit(*pairs[i % len(pairs)]))
                for i in range(24)
            ]
            os.kill(victim_pid, signal.SIGKILL)
            died = 0
            for idx, fut in futures:
                try:
                    res = fut.result(timeout=120)
                    np.testing.assert_array_equal(expected[idx].tr, res.tr)
                except WorkerDied:
                    died += 1
            assert gateway.metrics.count("worker_deaths") == deaths_before + 1
            # The dead slot must come back and the gateway must keep
            # serving correct results afterwards.
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                if victim.alive and victim.proc.pid != victim_pid:
                    break
                time.sleep(0.05)
            assert victim.alive and victim.proc.pid != victim_pid
            for i in range(8):
                idx = i % len(pairs)
                res = client.predict(*pairs[idx], timeout=120)
                np.testing.assert_array_equal(expected[idx].tr, res.tr)

    def test_no_shm_leak_across_kills(self, problem_set):
        """Worker kills never leak /dev/shm entries: arenas are
        gateway-owned and unlinked exactly once at close."""
        pairs, _ = problem_set
        before = shm_entries()
        gw = Gateway(
            MODEL, workers=1, batch_size=2, max_latency_ms=2.0,
            restart_backoff_ms=10.0,
        )
        try:
            with gw.connect() as client:
                client.predict(*pairs[0])
                pid = gw.supervisor.handles[0].proc.pid
                os.kill(pid, signal.SIGKILL)
                # Wait for the respawn, then serve again.
                deadline = time.monotonic() + 60
                while time.monotonic() < deadline:
                    h = gw.supervisor.handles[0]
                    if h.alive and h.proc.pid != pid:
                        break
                    time.sleep(0.05)
                client.predict(*pairs[1], timeout=120)
        finally:
            gw.close()
        assert shm_entries() <= before


class TestAdmission:
    def test_nonblocking_submit_rejects_when_full(self, problem_set):
        pairs, _ = problem_set
        gw = Gateway(
            MODEL, workers=1, batch_size=4, max_latency_ms=1_000.0,
            max_pending=4,
        )
        try:
            with gw.connect() as client:
                # 4 fill the queue, the 5th parks in admission; while the
                # single worker chews the first flush, a burst of
                # non-blocking submissions must bounce with QueueFull.
                futures = [client.submit(*pairs[0]) for _ in range(5)]
                futures += [
                    client.submit(*pairs[0], block=False) for _ in range(20)
                ]
                outcomes = [fut.exception(timeout=120) for fut in futures]
                assert any(isinstance(exc, QueueFull) for exc in outcomes)
                assert all(
                    exc is None or isinstance(exc, QueueFull)
                    for exc in outcomes
                )
                assert gw.metrics.count("rejected") >= 1
        finally:
            gw.close()


class TestGatewayShutdown:
    def test_close_drains_pending(self, problem_set):
        pairs, expected = problem_set
        gw = Gateway(MODEL, workers=2, batch_size=4, max_latency_ms=1_000.0)
        client = gw.connect()
        futures = [
            (i % len(pairs), client.submit(*pairs[i % len(pairs)]))
            for i in range(6)
        ]
        # Drain covers *admitted* requests; wait until all six crossed the
        # socket into the admission queue before closing.
        deadline = time.monotonic() + 30
        while gw.metrics.count("submitted") < 6 and time.monotonic() < deadline:
            time.sleep(0.01)
        gw.close(drain=True)  # flush deadline far away: close must flush
        for idx, fut in futures:
            np.testing.assert_array_equal(
                expected[idx].tr, fut.result(timeout=60).tr
            )
        assert gw.closed
        client.close()

    def test_close_without_drain_fails_pending(self, problem_set):
        pairs, _ = problem_set
        gw = Gateway(
            MODEL, workers=1, batch_size=64, max_latency_ms=10_000.0,
            max_pending=64,
        )
        client = gw.connect()
        futures = [client.submit(*pairs[i % len(pairs)]) for i in range(10)]
        time.sleep(0.2)  # let the requests reach the admission queue
        gw.close(drain=False)
        resolved = [f.exception(timeout=60) for f in futures]
        assert all(
            exc is None or isinstance(exc, (ServerClosed, WorkerDied))
            for exc in resolved
        )
        assert any(isinstance(exc, ServerClosed) for exc in resolved)
        client.close()

    def test_submit_after_close_fails_cleanly(self, problem_set):
        pairs, _ = problem_set
        gw = Gateway(MODEL, workers=1)
        client = gw.connect()
        gw.close()
        with pytest.raises(ServerClosed):
            client.submit(*pairs[0]).result(timeout=60)
        client.close()

    def test_close_idempotent(self):
        gw = Gateway(MODEL, workers=1)
        gw.close()
        gw.close()
        assert gw.closed

    def test_close_unlinks_all_segments(self):
        before = shm_entries()
        gw = Gateway(MODEL, workers=2, dtype="float32")  # + param block
        created = shm_entries() - before
        assert len(created) == 5  # 2 workers x 2 arenas + shared params
        gw.close()
        assert shm_entries() <= before


class TestFloat32SharedShadow:
    def test_float32_serving_within_tolerance(self, problem_set):
        pairs, expected = problem_set
        gw = Gateway(MODEL, workers=2, batch_size=4, dtype="float32")
        try:
            with gw.connect() as client:
                for idx in (0, 3, 6):
                    res = client.predict(*pairs[idx], timeout=120)
                    assert res.tr.dtype == np.float32
                    assert np.abs(expected[idx].tr - res.tr).max() <= 1e-4
                    assert np.abs(expected[idx].lg - res.lg).max() <= 1e-4
        finally:
            gw.close()
