"""Concurrency stress tests for the serving front-end.

Many submitter threads hammer one server; the assertions are the queue
invariants: no request is lost (every future resolves), none is
duplicated or cross-wired (each result is bitwise-equal to *its own*
circuit's sequential prediction — distinct workloads make any swap
visible), the admission bound holds, and the metric counters reconcile
with what the clients observed.
"""

import threading
import time

import numpy as np
import pytest

from repro.models.base import ModelConfig
from repro.models.deepseq import DeepSeq
from repro.serve import (
    DeadlineExceeded,
    QueueFull,
    ServeError,
    Server,
    ServerClosed,
)

from tests.conftest import build_pair

MODEL = DeepSeq(ModelConfig(hidden=12, iterations=2, seed=0))


@pytest.fixture(scope="module")
def problem_set():
    """12 distinct (graph, workload) pairs plus sequential expectations."""
    pairs = [
        build_pair(seed=s, n_dffs=s % 4, n_gates=18 + 3 * s) for s in range(12)
    ]
    expected = [MODEL.predict(g, w) for g, w in pairs]
    return pairs, expected


def hammer(server, pairs, n_threads, per_thread):
    """Concurrent closed-loop clients; returns (pair_idx, result) lists."""
    outcomes: list[list] = [[] for _ in range(n_threads)]
    errors: list[Exception] = []

    def client(cid):
        try:
            for i in range(per_thread):
                idx = (cid * 7 + i * 3) % len(pairs)
                future = server.submit(*pairs[idx])
                outcomes[cid].append((idx, future.result(timeout=60)))
        except Exception as exc:  # surface in the main thread
            errors.append(exc)

    threads = [
        threading.Thread(target=client, args=(c,)) for c in range(n_threads)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors, errors
    return [item for per_client in outcomes for item in per_client]


class TestManySubmitters:
    def test_no_lost_or_crosswired_requests(self, problem_set):
        pairs, expected = problem_set
        n_threads, per_thread = 6, 10
        with Server(
            MODEL, workers=3, batch_size=4, max_latency_ms=5, dtype="float64"
        ) as srv:
            outcomes = hammer(srv, pairs, n_threads, per_thread)
            srv.drain(timeout=30)
            snap = srv.metrics.snapshot()
        assert len(outcomes) == n_threads * per_thread
        for idx, result in outcomes:
            np.testing.assert_array_equal(expected[idx].tr, result.tr)
            np.testing.assert_array_equal(expected[idx].lg, result.lg)
        assert snap["submitted"] == n_threads * per_thread
        assert snap["completed"] == n_threads * per_thread
        assert snap["failed"] == snap["expired"] == snap["rejected"] == 0
        assert snap["batched_circuits"] == n_threads * per_thread
        assert snap["e2e_ms"]["count"] == n_threads * per_thread

    def test_admission_bound_holds_under_pressure(self, problem_set):
        pairs, _ = problem_set
        max_pending = 8
        with Server(
            MODEL,
            workers=1,
            batch_size=4,
            max_latency_ms=5,
            max_pending=max_pending,
            dtype="float64",
        ) as srv:
            observed = []

            def client(cid):
                for i in range(12):
                    srv.submit(*pairs[(cid + i) % len(pairs)])
                    observed.append(srv.pending)

            threads = [
                threading.Thread(target=client, args=(c,)) for c in range(4)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            srv.drain(timeout=60)
        assert max(observed) <= max_pending

    def test_nonblocking_submit_rejects_when_full(self, problem_set):
        pairs, _ = problem_set
        # One worker, long flush deadline: the queue genuinely fills.
        srv = Server(
            MODEL,
            workers=1,
            batch_size=4,
            max_latency_ms=10_000,
            max_pending=4,
            dtype="float64",
        )
        try:
            futures = [srv.submit(*pairs[0], block=True) for _ in range(4)]
            # Queue may momentarily dip as the worker claims a batch; keep
            # pushing non-blocking submissions until one bounces.
            with pytest.raises(QueueFull):
                for _ in range(200):
                    futures.append(srv.submit(*pairs[0], block=False))
            assert srv.metrics.count("rejected") >= 1
        finally:
            srv.close()
        for f in futures:
            f.result(timeout=60)


class TestDeadlines:
    def test_expired_requests_fail_not_hang(self, problem_set):
        pairs, expected = problem_set
        with Server(
            MODEL,
            workers=1,
            batch_size=2,
            max_latency_ms=1,
            deadline_ms=0.01,  # expires before any batch can start
            dtype="float64",
        ) as srv:
            futures = [srv.submit(*pairs[i % 4]) for i in range(8)]
            time.sleep(0.05)
            outcomes = [f.exception(timeout=30) for f in futures]
        # Every future resolved; any that ran matched its deadline budget.
        assert all(
            exc is None or isinstance(exc, DeadlineExceeded) for exc in outcomes
        )
        assert any(isinstance(exc, DeadlineExceeded) for exc in outcomes)
        snap = srv.metrics.snapshot()
        assert snap["expired"] + snap["completed"] == 8

    def test_per_request_deadline_overrides_config(self, problem_set):
        pairs, expected = problem_set
        with Server(
            MODEL, workers=1, batch_size=4, max_latency_ms=5, dtype="float64"
        ) as srv:
            relaxed = srv.submit(*pairs[0])  # no deadline
            result = relaxed.result(timeout=30)
        np.testing.assert_array_equal(expected[0].tr, result.tr)


class TestShutdown:
    def test_close_drains_pending(self, problem_set):
        pairs, expected = problem_set
        srv = Server(
            MODEL, workers=2, batch_size=4, max_latency_ms=1_000, dtype="float64"
        )
        futures = [srv.submit(*pairs[i % len(pairs)]) for i in range(10)]
        srv.close(drain=True)  # flush deadline far away: close must flush
        for i, f in enumerate(futures):
            np.testing.assert_array_equal(
                expected[i % len(pairs)].tr, f.result(timeout=1).tr
            )
        assert srv.closed

    def test_close_without_drain_fails_pending(self, problem_set):
        pairs, _ = problem_set
        srv = Server(
            MODEL, workers=1, batch_size=64, max_latency_ms=10_000,
            max_pending=64, dtype="float64",
        )
        futures = [srv.submit(*pairs[i % len(pairs)]) for i in range(10)]
        srv.close(drain=False)
        resolved = [f.exception(timeout=5) for f in futures]
        # Workers may have claimed a batch before close; the rest fail.
        assert all(
            exc is None or isinstance(exc, ServerClosed) for exc in resolved
        )
        assert any(isinstance(exc, ServerClosed) for exc in resolved)

    def test_submit_after_close_raises(self, problem_set):
        pairs, _ = problem_set
        srv = Server(MODEL, workers=1, dtype="float64")
        srv.close()
        with pytest.raises(ServerClosed):
            srv.submit(*pairs[0])

    def test_close_idempotent_and_concurrent(self, problem_set):
        pairs, _ = problem_set
        srv = Server(MODEL, workers=2, dtype="float64")
        srv.submit(*pairs[0])
        threads = [threading.Thread(target=srv.close) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        srv.close()
        assert srv.closed

    def test_submitters_racing_shutdown_never_hang(self, problem_set):
        """Clients submitting while another thread closes the server either
        get served or get a clean ServeError — never a hang."""
        pairs, _ = problem_set
        srv = Server(
            MODEL, workers=2, batch_size=2, max_latency_ms=5, dtype="float64"
        )
        stop_errors: list[Exception] = []

        def client(cid):
            for i in range(20):
                try:
                    srv.submit(*pairs[(cid + i) % len(pairs)]).result(timeout=30)
                except ServeError:
                    return
                except Exception as exc:
                    stop_errors.append(exc)
                    return

        threads = [threading.Thread(target=client, args=(c,)) for c in range(4)]
        for t in threads:
            t.start()
        time.sleep(0.2)
        srv.close()
        for t in threads:
            t.join(timeout=60)
            assert not t.is_alive()
        assert not stop_errors, stop_errors


class TestShutdownTimeouts:
    """The close-path bugfixes: one shared deadline across K worker joins,
    and a no-drain close winning over an in-progress draining close."""

    def _stuck_server(self, monkeypatch, pairs, workers):
        """A server whose sweeps block on an event we control; returns
        (server, release_event, entered_list, futures)."""
        import repro.serve.server as server_mod

        real = server_mod.run_packed_isolated
        release = threading.Event()
        entered: list[int] = []
        lock = threading.Lock()

        def stuck(replica, graphs, workloads, dtype):
            with lock:
                entered.append(1)
            release.wait(timeout=120)
            return real(replica, graphs, workloads, dtype=dtype)

        monkeypatch.setattr(server_mod, "run_packed_isolated", stuck)
        srv = Server(
            MODEL, workers=workers, batch_size=1, max_latency_ms=1,
            max_concurrent_sweeps=workers,  # let every worker get stuck
            dtype="float64",
        )
        futures = [srv.submit(*pairs[i]) for i in range(workers)]
        deadline = time.monotonic() + 30
        while len(entered) < workers and time.monotonic() < deadline:
            time.sleep(0.005)
        assert len(entered) == workers  # every worker is mid-sweep
        return srv, release, futures

    def test_close_timeout_shared_across_workers(self, monkeypatch, problem_set):
        """``close(timeout=t)`` with K stuck workers returns in ~t, not
        K*t: the joins share one deadline.  A timed-out close reports
        ``closed=False`` instead of pretending shutdown finished."""
        pairs, expected = problem_set
        workers = 3
        srv, release, futures = self._stuck_server(monkeypatch, pairs, workers)
        try:
            t0 = time.monotonic()
            srv.close(timeout=0.5)
            elapsed = time.monotonic() - t0
            # Per-worker deadlines would take >= workers * 0.5 = 1.5 s.
            assert elapsed < 1.2, f"close took {elapsed:.2f}s for {workers} joins"
            assert srv.closed is False
        finally:
            release.set()
        for i, fut in enumerate(futures):
            np.testing.assert_array_equal(
                expected[i].tr, fut.result(timeout=60).tr
            )
        srv.close()  # workers unblocked: now shutdown completes
        assert srv.closed

    def test_nodrain_close_wins_over_inflight_drain(self, monkeypatch, problem_set):
        """``close(drain=False)`` racing an in-progress ``close(drain=True)``
        fails what is still queued with ServerClosed instead of letting the
        drain keep serving it."""
        pairs, expected = problem_set
        srv, release, inflight = self._stuck_server(monkeypatch, pairs, 1)
        queued = [srv.submit(*pairs[1 + i]) for i in range(4)]
        drainer = threading.Thread(target=srv.close, kwargs={"drain": True})
        drainer.start()
        deadline = time.monotonic() + 30
        while not srv._closing and time.monotonic() < deadline:
            time.sleep(0.005)
        # The draining close is now blocked joining the stuck worker.
        srv.close(drain=False, timeout=0.2)
        outcomes = [f.exception(timeout=5) for f in queued]
        assert all(isinstance(exc, ServerClosed) for exc in outcomes), outcomes
        release.set()
        drainer.join(timeout=60)
        assert not drainer.is_alive()
        # The batch the worker had already claimed still completes.
        np.testing.assert_array_equal(
            expected[0].tr, inflight[0].result(timeout=60).tr
        )
        assert srv.closed


class TestGatewayConcurrency:
    """The multi-process front door under the same hammer: concurrent
    clients across several connections, no lost/cross-wired requests."""

    def test_many_clients_many_threads_bitwise(self, problem_set):
        from repro.serve import Gateway

        pairs, expected = problem_set
        netlisted = [(g.netlist, w) for g, w in pairs]
        gw = Gateway(
            MODEL, workers=2, batch_size=4, max_latency_ms=5.0,
            dtype="float64",
        )
        try:
            clients = [gw.connect() for _ in range(3)]
            outcomes: list[list] = [[] for _ in range(6)]
            errors: list[Exception] = []

            def client(cid):
                conn = clients[cid % len(clients)]
                try:
                    for i in range(8):
                        idx = (cid * 7 + i * 3) % len(netlisted)
                        fut = conn.submit(*netlisted[idx])
                        outcomes[cid].append((idx, fut.result(timeout=120)))
                except Exception as exc:  # surface in the main thread
                    errors.append(exc)

            threads = [
                threading.Thread(target=client, args=(c,)) for c in range(6)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert not errors, errors
            flat = [item for per in outcomes for item in per]
            assert len(flat) == 6 * 8
            for idx, result in flat:
                np.testing.assert_array_equal(expected[idx].tr, result.tr)
                np.testing.assert_array_equal(expected[idx].lg, result.lg)
            snap = gw.metrics.snapshot()
            assert snap["completed"] >= 6 * 8
            assert snap["worker_deaths"] == 0
            for c in clients:
                c.close()
        finally:
            gw.close()


class TestReplicaIsolation:
    def test_refresh_parameters_propagates_new_weights(self, problem_set):
        pairs, expected = problem_set
        model = DeepSeq(ModelConfig(hidden=12, iterations=2, seed=0))
        with Server(model, workers=2, batch_size=2, max_latency_ms=5,
                    dtype="float64") as srv:
            before = srv.predict(*pairs[0])
            np.testing.assert_array_equal(expected[0].tr, before.tr)
            for p in model.parameters():
                p.data[...] += 0.05
            stale = srv.predict(*pairs[0])  # replicas unaffected by edit
            np.testing.assert_array_equal(before.tr, stale.tr)
            srv.refresh_parameters()
            fresh = srv.predict(*pairs[0])
            np.testing.assert_array_equal(
                model.predict(*pairs[0]).tr, fresh.tr
            )
            assert np.abs(fresh.tr - before.tr).max() > 0


@pytest.mark.slow
class TestSoak:
    def test_sustained_load_square(self, problem_set):
        """A longer soak: 8 clients x 40 requests over 4 workers."""
        pairs, expected = problem_set
        with Server(
            MODEL, workers=4, batch_size=8, max_latency_ms=10, dtype="float64"
        ) as srv:
            outcomes = hammer(srv, pairs, n_threads=8, per_thread=40)
            srv.drain(timeout=120)
            snap = srv.metrics.snapshot()
        assert len(outcomes) == 8 * 40
        for idx, result in outcomes:
            np.testing.assert_array_equal(expected[idx].tr, result.tr)
        assert snap["completed"] == 8 * 40
        assert snap["mean_batch_size"] > 1.0  # load actually batched
