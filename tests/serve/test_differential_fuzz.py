"""Differential fuzzing: the server vs sequential ``predict``.

Hypothesis drives random fleets of ``random_sequential_netlist`` circuits
(plus the known corner shapes) through a :class:`repro.serve.Server` and
pins the served results to sequential :meth:`RecurrentDagGnn.predict` on
the *source* model — float64 bitwise, float32 within the documented
tolerance — across random worker counts, batch sizes and flush deadlines.
This is the enforcement of the serving layer's equivalence guarantee.
"""

from functools import lru_cache

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.models.base import ModelConfig
from repro.models.deepseq import DeepSeq
from repro.serve import Gateway, Server

from tests.conftest import build_pair, dff_chain_pair, shallow_pair, single_node_pair

#: One shared model: the differential target is the *server* machinery,
#: not the weights, and rebuilding a model per hypothesis example would
#: dominate the suite's wall-time.
MODEL = DeepSeq(ModelConfig(hidden=12, iterations=2, seed=0))

#: Hypothesis picks fleet members from this pool of builders by index.
#: Small circuits keep each example cheap; the pool still spans DFF-free,
#: DFF-heavy, shallow and single-node shapes.
POOL = [
    lambda: build_pair(seed=0, n_dffs=3, n_gates=30),
    lambda: build_pair(seed=1, n_dffs=0, n_gates=25),
    lambda: build_pair(seed=2, n_dffs=6, n_gates=20),
    lambda: build_pair(seed=3, n_dffs=1, n_gates=45),
    lambda: build_pair(seed=4, n_pis=3, n_dffs=2, n_gates=15),
    shallow_pair,
    dff_chain_pair,
    single_node_pair,
]


@lru_cache(maxsize=None)
def expected(pool_idx: int):
    """Sequential float64 prediction for pool member ``pool_idx``."""
    graph, wl = POOL[pool_idx]()
    return MODEL.predict(graph, wl)


fleet_indices = st.lists(
    st.integers(0, len(POOL) - 1), min_size=1, max_size=12
)


class TestFloat64Bitwise:
    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        indices=fleet_indices,
        workers=st.integers(1, 3),
        batch_size=st.integers(1, 5),
        max_latency_ms=st.sampled_from([1.0, 10.0, 50.0]),
    )
    def test_streamed_results_bitwise(
        self, indices, workers, batch_size, max_latency_ms
    ):
        pairs = [POOL[i]() for i in indices]
        with Server(
            MODEL,
            workers=workers,
            batch_size=batch_size,
            max_latency_ms=max_latency_ms,
            dtype="float64",
        ) as srv:
            futures = [srv.submit(g, w) for g, w in pairs]
            results = [f.result(timeout=60) for f in futures]
        for idx, res in zip(indices, results):
            exp = expected(idx)
            np.testing.assert_array_equal(exp.tr, res.tr)
            np.testing.assert_array_equal(exp.lg, res.lg)

    def test_repeated_structures_one_big_stream(self):
        """The steady-state serving case: few structures, many requests."""
        indices = [i % len(POOL) for i in range(40)]
        with Server(
            MODEL, workers=2, batch_size=8, max_latency_ms=5, dtype="float64"
        ) as srv:
            futures = [srv.submit(*POOL[i]()) for i in indices]
            results = [f.result(timeout=60) for f in futures]
        for idx, res in zip(indices, results):
            np.testing.assert_array_equal(expected(idx).tr, res.tr)


class TestFloat32Tolerance:
    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(indices=fleet_indices, batch_size=st.integers(1, 5))
    def test_streamed_results_close(self, indices, batch_size):
        pairs = [POOL[i]() for i in indices]
        with Server(
            MODEL,
            workers=2,
            batch_size=batch_size,
            max_latency_ms=10,
            dtype="float32",
        ) as srv:
            results = [f.result(timeout=60) for f in
                       [srv.submit(g, w) for g, w in pairs]]
        for idx, res in zip(indices, results):
            exp = expected(idx)
            assert res.tr.dtype == np.float32
            assert np.abs(exp.tr - res.tr).max() <= 1e-4
            assert np.abs(exp.lg - res.lg).max() <= 1e-4


@pytest.mark.slow
class TestDeepFuzz:
    """The nightly tier: more examples, fresh structures per example."""

    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        seeds=st.lists(st.integers(0, 500), min_size=1, max_size=8),
        n_dffs=st.integers(0, 8),
        n_gates=st.integers(8, 60),
        workers=st.integers(1, 4),
        batch_size=st.integers(1, 8),
    )
    def test_fresh_structures_bitwise(
        self, seeds, n_dffs, n_gates, workers, batch_size
    ):
        pairs = [
            build_pair(seed=s, n_dffs=n_dffs, n_gates=n_gates) for s in seeds
        ]
        sequential = [MODEL.predict(g, w) for g, w in pairs]
        with Server(
            MODEL,
            workers=workers,
            batch_size=batch_size,
            max_latency_ms=2,
            dtype="float64",
        ) as srv:
            results = [f.result(timeout=60) for f in
                       [srv.submit(g, w) for g, w in pairs]]
        for exp, res in zip(sequential, results):
            np.testing.assert_array_equal(exp.tr, res.tr)
            np.testing.assert_array_equal(exp.lg, res.lg)


@pytest.fixture(scope="module")
def fuzz_gateway():
    """One gateway shared across examples: worker processes restore their
    replicas from the dumps_state byte round-trip exactly once, and every
    hypothesis example then exercises admission/batching/shm transport."""
    gw = Gateway(
        MODEL, workers=2, batch_size=4, max_latency_ms=2.0, dtype="float64"
    )
    yield gw
    gw.close()


class TestGatewayFloat64Bitwise:
    """The multi-process analogue of :class:`TestFloat64Bitwise`: the same
    fleets served through the socket front door and worker *processes*
    must still be bitwise-equal to sequential ``predict``.  Covers the
    whole extended chain: pickle+npz replica restore in a forkserver
    child, float64 feature vectors through the shared-memory arena,
    packed execution, results back through the result arena and the
    pickle frame transport."""

    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(indices=fleet_indices)
    def test_streamed_results_bitwise(self, fuzz_gateway, indices):
        pairs = [POOL[i]() for i in indices]
        with fuzz_gateway.connect() as client:
            futures = [client.submit(g.netlist, w) for g, w in pairs]
            results = [f.result(timeout=120) for f in futures]
        for idx, res in zip(indices, results):
            exp = expected(idx)
            np.testing.assert_array_equal(exp.tr, res.tr)
            np.testing.assert_array_equal(exp.lg, res.lg)

    def test_repeated_structures_one_big_stream(self, fuzz_gateway):
        """Steady state through the gateway: structures ship to each
        worker once; every later request rides the shm arenas."""
        indices = [i % len(POOL) for i in range(32)]
        with fuzz_gateway.connect() as client:
            futures = [
                client.submit(POOL[i]()[0].netlist, POOL[i]()[1])
                for i in indices
            ]
            results = [f.result(timeout=120) for f in futures]
        for idx, res in zip(indices, results):
            np.testing.assert_array_equal(expected(idx).tr, res.tr)
            np.testing.assert_array_equal(expected(idx).lg, res.lg)
