"""Tests for the .bench parser/writer (repro.circuit.bench)."""

import pytest

from repro.circuit.bench import (
    parse_bench,
    parse_bench_file,
    write_bench,
    write_bench_file,
)
from repro.circuit.gates import GateType
from repro.circuit.generate import GeneratorConfig, random_sequential_netlist
from repro.circuit.netlist import NetlistError

S27_LIKE = """
# a small ISCAS'89-style circuit
INPUT(G0)
INPUT(G1)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G10 = NAND(G0, G6)
G11 = NOR(G5, G1)
G17 = NOT(G11)
"""


class TestParse:
    def test_parses_structure(self):
        nl = parse_bench(S27_LIKE, "s27")
        assert len(nl.pis) == 2
        assert len(nl.dffs) == 2
        assert len(nl.pos) == 1
        assert nl.gate_type(nl.node_by_name("G10")) is GateType.NAND

    def test_forward_references_resolve(self):
        # G5 = DFF(G10) references G10 before its definition.
        nl = parse_bench(S27_LIKE)
        g5 = nl.node_by_name("G5")
        assert nl.fanins(g5) == (nl.node_by_name("G10"),)

    def test_case_insensitive_gate_names(self):
        nl = parse_bench("INPUT(a)\nOUTPUT(b)\nb = nand(a, a)\n")
        assert nl.gate_type(nl.node_by_name("b")) is GateType.NAND

    def test_ff_alias(self):
        nl = parse_bench("INPUT(a)\nOUTPUT(q)\nq = FF(a)\n")
        assert nl.gate_type(nl.node_by_name("q")) is GateType.DFF

    def test_comments_and_blank_lines_ignored(self):
        text = "# hello\n\nINPUT(a)\n  # more\nOUTPUT(b)\nb = NOT(a) # inline\n"
        nl = parse_bench(text)
        assert len(nl) == 2

    def test_unknown_gate_rejected(self):
        with pytest.raises(NetlistError, match="unknown gate"):
            parse_bench("INPUT(a)\nb = FROB(a)\n")

    def test_undefined_signal_rejected(self):
        with pytest.raises(NetlistError, match="undefined"):
            parse_bench("INPUT(a)\nb = NOT(zzz)\n")

    def test_double_assignment_rejected(self):
        with pytest.raises(NetlistError, match="twice"):
            parse_bench("INPUT(a)\nb = NOT(a)\nb = BUF(a)\n")

    def test_undefined_output_rejected(self):
        with pytest.raises(NetlistError, match="OUTPUT"):
            parse_bench("INPUT(a)\nOUTPUT(nope)\nb = NOT(a)\n")

    def test_garbage_line_rejected(self):
        with pytest.raises(NetlistError, match="cannot parse"):
            parse_bench("INPUT(a)\nthis is not bench\n")


class TestRoundTrip:
    def test_small_roundtrip(self):
        nl = parse_bench(S27_LIKE, "s27")
        again = parse_bench(write_bench(nl), "s27rt")
        assert len(again) == len(nl)
        assert len(again.pis) == len(nl.pis)
        assert len(again.dffs) == len(nl.dffs)
        assert len(again.pos) == len(nl.pos)
        for node in nl.nodes():
            name = nl.node_name(node)
            other = again.node_by_name(name)
            assert again.gate_type(other) is nl.gate_type(node)
            assert [again.node_name(f) for f in again.fanins(other)] == [
                nl.node_name(f) for f in nl.fanins(node)
            ]

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_netlist_roundtrip(self, seed):
        nl = random_sequential_netlist(
            GeneratorConfig(n_pis=5, n_dffs=4, n_gates=40), seed=seed
        )
        again = parse_bench(write_bench(nl))
        assert len(again) == len(nl)
        assert again.type_counts() == nl.type_counts()

    def test_file_roundtrip(self, tmp_path):
        nl = parse_bench(S27_LIKE, "s27")
        path = tmp_path / "s27.bench"
        write_bench_file(nl, path)
        again = parse_bench_file(path)
        assert again.name == "s27"
        assert len(again) == len(nl)


class TestNameValidation:
    """write_bench must refuse names that cannot survive the trip."""

    @pytest.mark.parametrize(
        "bad", ["a b", "a\tb", "n(1", "n)1", "n,1", "n#1", "n=1", ""]
    )
    def test_unserializable_name_rejected(self, bad):
        from repro.circuit.netlist import Netlist

        nl = Netlist("t")
        a = nl.add_pi("a")
        node = nl.add_gate(GateType.NOT, [a], "ok")
        nl.add_po(node)
        # No public rename: force the bad name through the node table, the
        # way a buggy importer or hand-built netlist would.
        nl._nodes[node].name = bad
        with pytest.raises(NetlistError, match="serialized"):
            write_bench(nl)

    def test_clean_names_accepted(self):
        from repro.circuit.netlist import Netlist

        nl = Netlist("t")
        a = nl.add_pi("in_1.a[0]")
        nl.add_po(nl.add_gate(GateType.BUF, [a], "out-1$x"))
        assert "in_1.a[0]" in write_bench(nl)


class TestHypothesisRoundTrip:
    """parse_bench(write_bench(nl)) is structurally the identity."""

    from hypothesis import given, settings
    from hypothesis import strategies as st

    @staticmethod
    def _random_netlist(seed: int, n_dffs: int, with_consts: bool):
        from repro.circuit.netlist import Netlist

        nl = random_sequential_netlist(
            GeneratorConfig(
                n_pis=4,
                n_dffs=n_dffs,
                n_gates=30,
                gate_mix={
                    GateType.AND: 0.3,
                    GateType.NOT: 0.2,
                    GateType.XOR: 0.2,
                    GateType.MUX: 0.2,
                    GateType.OR: 0.1,
                },
                n_pos=3,
            ),
            seed=seed,
        )
        if with_consts:
            k0 = nl.add_gate(GateType.CONST0, [], "konst0")
            k1 = nl.add_gate(GateType.CONST1, [], "konst1")
            nl.add_po(nl.add_gate(GateType.OR, [k0, k1], "kor"))
            nl.validate()
        return nl

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        n_dffs=st.integers(min_value=0, max_value=6),
        with_consts=st.booleans(),
    )
    def test_structural_identity(self, seed, n_dffs, with_consts):
        nl = self._random_netlist(seed, n_dffs, with_consts)
        again = parse_bench(write_bench(nl))
        assert len(again) == len(nl)
        assert len(again.pis) == len(nl.pis)
        assert len(again.dffs) == len(nl.dffs)
        assert [again.node_name(p) for p in again.pos] == [
            nl.node_name(p) for p in nl.pos
        ]
        for node in nl.nodes():
            name = nl.node_name(node)
            other = again.node_by_name(name)
            assert again.gate_type(other) is nl.gate_type(node)
            assert [again.node_name(f) for f in again.fanins(other)] == [
                nl.node_name(f) for f in nl.fanins(node)
            ]
