"""Tests for gate semantics (repro.circuit.gates)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.circuit.gates import (
    AIG_TYPES,
    FANIN_ARITY,
    ONE_HOT_DIM,
    ONE_HOT_INDEX,
    GateType,
    eval_gate,
    gate_truth_table,
    one_hot,
)

BOOL_GATES = [
    GateType.AND,
    GateType.OR,
    GateType.NAND,
    GateType.NOR,
    GateType.XOR,
    GateType.XNOR,
]

PY_REFERENCE = {
    GateType.AND: lambda ins: all(ins),
    GateType.OR: lambda ins: any(ins),
    GateType.NAND: lambda ins: not all(ins),
    GateType.NOR: lambda ins: not any(ins),
    GateType.XOR: lambda ins: sum(ins) % 2 == 1,
    GateType.XNOR: lambda ins: sum(ins) % 2 == 0,
}


class TestEvalGate:
    @pytest.mark.parametrize("gate", BOOL_GATES)
    @pytest.mark.parametrize("arity", [2, 3, 4])
    def test_matches_python_reference(self, gate, arity):
        rng = np.random.default_rng(0)
        inputs = [rng.integers(0, 2, size=16).astype(bool) for _ in range(arity)]
        out = eval_gate(gate, inputs)
        for k in range(16):
            expected = PY_REFERENCE[gate]([bool(x[k]) for x in inputs])
            assert bool(out[k]) == expected, (gate, arity, k)

    def test_not(self):
        x = np.array([True, False, True])
        assert (eval_gate(GateType.NOT, [x]) == ~x).all()

    def test_buf_copies(self):
        x = np.array([True, False])
        out = eval_gate(GateType.BUF, [x])
        assert (out == x).all()
        out[0] = False
        assert x[0], "BUF must not alias its input"

    def test_mux_selects(self):
        sel = np.array([False, False, True, True])
        a = np.array([False, True, False, True])
        b = np.array([True, False, True, False])
        out = eval_gate(GateType.MUX, [sel, a, b])
        assert out.tolist() == [False, True, True, False]

    def test_works_on_packed_words(self):
        a = np.array([0xF0F0F0F0F0F0F0F0], dtype=np.uint64)
        b = np.array([0xFF00FF00FF00FF00], dtype=np.uint64)
        assert eval_gate(GateType.AND, [a, b])[0] == a[0] & b[0]
        assert eval_gate(GateType.XOR, [a, b])[0] == a[0] ^ b[0]

    def test_rejects_wrong_arity(self):
        x = np.zeros(4, dtype=bool)
        with pytest.raises(ValueError):
            eval_gate(GateType.NOT, [x, x])
        with pytest.raises(ValueError):
            eval_gate(GateType.AND, [x])
        with pytest.raises(ValueError):
            eval_gate(GateType.MUX, [x, x])

    def test_rejects_non_functions(self):
        with pytest.raises(ValueError):
            eval_gate(GateType.PI, [])
        with pytest.raises(ValueError):
            eval_gate(GateType.DFF, [np.zeros(2, dtype=bool)])


class TestTruthTable:
    @pytest.mark.parametrize("gate", BOOL_GATES)
    def test_agrees_with_eval(self, gate):
        table = gate_truth_table(gate, 2)
        assert table.shape == (4,)
        for row in range(4):
            ins = [bool((row >> k) & 1) for k in range(2)]
            assert bool(table[row]) == PY_REFERENCE[gate](ins)

    def test_not_table(self):
        assert gate_truth_table(GateType.NOT, 1).tolist() == [True, False]

    def test_consts(self):
        assert gate_truth_table(GateType.CONST0, 0).tolist() == [False]
        assert gate_truth_table(GateType.CONST1, 0).tolist() == [True]

    def test_mux_table_size(self):
        assert gate_truth_table(GateType.MUX, 3).shape == (8,)

    def test_rejects_bad_arity(self):
        with pytest.raises(ValueError):
            gate_truth_table(GateType.NOT, 2)
        with pytest.raises(ValueError):
            gate_truth_table(GateType.AND, 1)
        with pytest.raises(ValueError):
            gate_truth_table(GateType.PI, 0)

    @given(st.sampled_from(BOOL_GATES), st.integers(min_value=2, max_value=5))
    def test_table_length_is_power_of_two(self, gate, arity):
        assert gate_truth_table(gate, arity).shape == (2**arity,)


class TestOneHot:
    def test_each_aig_type_distinct(self):
        vecs = [tuple(one_hot(t)) for t in AIG_TYPES]
        assert len(set(vecs)) == len(AIG_TYPES)

    def test_dimension(self):
        assert ONE_HOT_DIM == 4
        for t in AIG_TYPES:
            v = one_hot(t)
            assert v.shape == (4,)
            assert v.sum() == 1.0
            assert v[ONE_HOT_INDEX[t]] == 1.0

    def test_rejects_extended_types(self):
        with pytest.raises(ValueError):
            one_hot(GateType.XOR)


class TestArityTable:
    def test_every_gate_has_arity_entry(self):
        for t in GateType:
            assert t in FANIN_ARITY

    def test_sources_have_zero_arity(self):
        assert FANIN_ARITY[GateType.PI] == 0
        assert FANIN_ARITY[GateType.CONST0] == 0
