"""Tests for sub-circuit extraction (repro.circuit.extract)."""

import numpy as np
import pytest

from repro.circuit.extract import extract_dataset, extract_subcircuit
from repro.circuit.gates import GateType
from repro.circuit.generate import GeneratorConfig, random_sequential_netlist


@pytest.fixture()
def parent():
    return random_sequential_netlist(
        GeneratorConfig(n_pis=8, n_dffs=8, n_gates=200), seed=13
    )


class TestExtractSubcircuit:
    def test_respects_budget(self, parent):
        rng = np.random.default_rng(0)
        sub = extract_subcircuit(parent, seed_node=50, target_nodes=40, rng=rng)
        sub.validate()
        # Boundary PIs may push past the budget slightly.
        assert len(sub) <= 40 + len(sub.pis)

    def test_result_valid_and_observable(self, parent):
        sub = extract_subcircuit(parent, seed_node=100, target_nodes=60)
        sub.validate()
        assert sub.pos

    def test_small_budget(self, parent):
        sub = extract_subcircuit(parent, seed_node=30, target_nodes=5)
        sub.validate()
        assert len(sub) >= 1

    def test_keeps_dff_loops_when_budget_allows(self, parent):
        dff = parent.dffs[0]
        sub = extract_subcircuit(parent, seed_node=dff, target_nodes=100)
        sub.validate()
        # The seed DFF survives with a real (non-PI) data input whenever its
        # source made it into the cut.
        assert sub.dffs


class TestExtractDataset:
    def test_count_and_sizes(self, parent):
        subs = extract_dataset(parent, count=5, size_range=(20, 50), seed=1)
        assert len(subs) == 5
        for sub in subs:
            sub.validate()

    def test_unique_names(self, parent):
        subs = extract_dataset(parent, count=4, size_range=(20, 40), seed=2)
        assert len({s.name for s in subs}) == 4

    def test_deterministic(self, parent):
        a = extract_dataset(parent, count=3, size_range=(20, 40), seed=3)
        b = extract_dataset(parent, count=3, size_range=(20, 40), seed=3)
        assert [len(x) for x in a] == [len(x) for x in b]

    def test_rejects_gateless_netlist(self):
        from repro.circuit.netlist import Netlist

        nl = Netlist("pis_only")
        nl.add_pi()
        with pytest.raises(ValueError):
            extract_dataset(nl, count=1, size_range=(5, 10))
