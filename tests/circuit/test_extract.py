"""Tests for sub-circuit extraction (repro.circuit.extract)."""

import numpy as np
import pytest

from repro.circuit.extract import extract_dataset, extract_subcircuit
from repro.circuit.gates import GateType
from repro.circuit.generate import GeneratorConfig, random_sequential_netlist


@pytest.fixture()
def parent():
    return random_sequential_netlist(
        GeneratorConfig(n_pis=8, n_dffs=8, n_gates=200), seed=13
    )


class TestExtractSubcircuit:
    def test_respects_budget(self, parent):
        rng = np.random.default_rng(0)
        sub = extract_subcircuit(parent, seed_node=50, target_nodes=40, rng=rng)
        sub.validate()
        # Boundary PIs may push past the budget slightly.
        assert len(sub) <= 40 + len(sub.pis)

    def test_result_valid_and_observable(self, parent):
        sub = extract_subcircuit(parent, seed_node=100, target_nodes=60)
        sub.validate()
        assert sub.pos

    def test_small_budget(self, parent):
        sub = extract_subcircuit(parent, seed_node=30, target_nodes=5)
        sub.validate()
        assert len(sub) >= 1

    def test_keeps_dff_loops_when_budget_allows(self, parent):
        dff = parent.dffs[0]
        sub = extract_subcircuit(parent, seed_node=dff, target_nodes=100)
        sub.validate()
        # The seed DFF survives with a real (non-PI) data input whenever its
        # source made it into the cut.
        assert sub.dffs


class TestExtractDataset:
    def test_count_and_sizes(self, parent):
        subs = extract_dataset(parent, count=5, size_range=(20, 50), seed=1)
        assert len(subs) == 5
        for sub in subs:
            sub.validate()

    def test_unique_names(self, parent):
        subs = extract_dataset(parent, count=4, size_range=(20, 40), seed=2)
        assert len({s.name for s in subs}) == 4

    def test_deterministic(self, parent):
        a = extract_dataset(parent, count=3, size_range=(20, 40), seed=3)
        b = extract_dataset(parent, count=3, size_range=(20, 40), seed=3)
        assert [len(x) for x in a] == [len(x) for x in b]

    def test_rejects_gateless_netlist(self):
        from repro.circuit.netlist import Netlist

        nl = Netlist("pis_only")
        nl.add_pi()
        with pytest.raises(ValueError):
            extract_dataset(nl, count=1, size_range=(5, 10))


class TestPartitionByLevels:
    def test_bands_cover_comb_gates_exactly_once(self, parent):
        from repro.circuit.extract import partition_by_levels
        from repro.circuit.levelize import levelize

        parts = partition_by_levels(parent, max_comb_nodes=40)
        covered = np.concatenate([p.parent_of[p.comb_ids] for p in parts])
        expected = np.concatenate(levelize(parent).comb_forward)
        assert np.array_equal(np.sort(covered), np.sort(expected))
        assert len(set(covered.tolist())) == covered.size

    def test_band_netlists_validate_and_are_fanin_closed(self, parent):
        from repro.circuit.extract import partition_by_levels

        for part in partition_by_levels(parent, max_comb_nodes=40):
            assert part.netlist.validate() is None
            # every gate's fanin is either an import PI or an earlier gate
            sub = part.netlist
            for node in sub.nodes():
                for f in sub.fanins(node):
                    assert f < node

    def test_parent_map_consistent(self, parent):
        from repro.circuit.extract import partition_by_levels

        for part in partition_by_levels(parent, max_comb_nodes=60):
            sub = part.netlist
            for sid in sub.nodes():
                pid = int(part.parent_of[sid])
                if sub.gate_type(sid) is not GateType.PI:
                    assert parent.gate_type(pid) is sub.gate_type(sid)

    def test_all_dff_netlist_has_no_bands(self):
        from repro.circuit.extract import partition_by_levels
        from repro.circuit.netlist import Netlist

        nl = Netlist("ffs")
        pi = nl.add_pi("a")
        prev = pi
        for k in range(5):
            prev = nl.add_dff(prev, f"f{k}")
        nl.add_po(prev)
        nl.validate()
        assert partition_by_levels(nl, max_comb_nodes=10) == []

    def test_bad_budget_rejected(self, parent):
        from repro.circuit.extract import partition_by_levels

        with pytest.raises(ValueError):
            partition_by_levels(parent, max_comb_nodes=0)

    def test_band_count_shrinks_with_budget(self, parent):
        from repro.circuit.extract import partition_by_levels

        many = partition_by_levels(parent, max_comb_nodes=20)
        few = partition_by_levels(parent, max_comb_nodes=10_000)
        assert len(many) > len(few) >= 1
