"""Tests for AIG lowering (repro.circuit.aig).

The load-bearing property: lowering must be *functionally exact* — every
original signal equals its mapped AIG fanout gate on every input pattern,
cycle by cycle.  Verified exhaustively for combinational circuits and via
bit-parallel simulation for sequential ones.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.circuit.aig import to_aig
from repro.circuit.gates import GateType
from repro.circuit.generate import GeneratorConfig, random_sequential_netlist
from repro.circuit.netlist import Netlist
from repro.sim.logicsim import SimConfig, Simulator, simulate
from repro.sim.workload import Workload


def exhaustive_outputs(nl: Netlist, nodes: list[int]) -> np.ndarray:
    """Evaluate a *combinational* netlist on all input assignments."""
    pis = nl.pis
    n_patterns = 2 ** len(pis)
    assert n_patterns <= 64
    sim = Simulator(nl, streams=64)
    rows = np.arange(n_patterns, dtype=np.uint64)
    pi_words = np.zeros((len(pis), 1), dtype=np.uint64)
    for k in range(len(pis)):
        bits = (rows >> np.uint64(k)) & np.uint64(1)
        word = np.uint64(0)
        for i, b in enumerate(bits):
            word |= np.uint64(int(b)) << np.uint64(i)
        pi_words[k, 0] = word
    values = sim.step(pi_words)
    mask = (np.uint64(1) << np.uint64(n_patterns)) - np.uint64(1) \
        if n_patterns < 64 else np.uint64(0xFFFFFFFFFFFFFFFF)
    return np.array([values[v, 0] & mask for v in nodes], dtype=np.uint64)


COMB_GATES = [
    GateType.AND,
    GateType.OR,
    GateType.NAND,
    GateType.NOR,
    GateType.XOR,
    GateType.XNOR,
    GateType.NOT,
    GateType.BUF,
    GateType.MUX,
]


class TestSingleGateLowering:
    @pytest.mark.parametrize("gate", COMB_GATES)
    def test_gate_equivalence_exhaustive(self, gate):
        arity = {GateType.NOT: 1, GateType.BUF: 1, GateType.MUX: 3}.get(gate, 2)
        nl = Netlist(f"single_{gate.value}")
        pis = [nl.add_pi(f"i{k}") for k in range(arity)]
        g = nl.add_gate(gate, pis, "out")
        nl.add_po(g)
        nl.validate()
        mapping = to_aig(nl)
        orig = exhaustive_outputs(nl, [g])
        new = exhaustive_outputs(mapping.aig, [mapping.fanout_of[g]])
        assert orig[0] == new[0], gate

    @pytest.mark.parametrize("gate", [GateType.AND, GateType.OR, GateType.XOR])
    @pytest.mark.parametrize("arity", [3, 4, 5])
    def test_nary_tree_equivalence(self, gate, arity):
        nl = Netlist("nary")
        pis = [nl.add_pi(f"i{k}") for k in range(arity)]
        g = nl.add_gate(gate, pis, "out")
        nl.add_po(g)
        mapping = to_aig(nl)
        assert mapping.aig.is_aig()
        orig = exhaustive_outputs(nl, [g])
        new = exhaustive_outputs(mapping.aig, [mapping.fanout_of[g]])
        assert orig[0] == new[0]

    def test_constants(self):
        nl = Netlist("consts")
        nl.add_pi("a")
        c0 = nl.add_gate(GateType.CONST0, [], "zero")
        c1 = nl.add_gate(GateType.CONST1, [], "one")
        nl.add_po(c0)
        nl.add_po(c1)
        mapping = to_aig(nl)
        outs = exhaustive_outputs(
            mapping.aig, [mapping.fanout_of[c0], mapping.fanout_of[c1]]
        )
        assert outs[0] == 0
        assert outs[1] == 3  # both patterns give 1


class TestStructure:
    def test_result_is_aig(self):
        nl = random_sequential_netlist(
            GeneratorConfig(n_pis=5, n_dffs=3, n_gates=30), seed=3
        )
        mapping = to_aig(nl)
        assert mapping.aig.is_aig()
        mapping.aig.validate()

    def test_idempotent_on_aig(self):
        nl = random_sequential_netlist(
            GeneratorConfig(
                n_pis=4,
                n_dffs=2,
                n_gates=20,
                gate_mix={GateType.AND: 0.6, GateType.NOT: 0.4},
                max_fanin=2,
            ),
            seed=5,
        )
        if not nl.is_aig():
            pytest.skip("generator emitted an n-ary AND")
        mapping = to_aig(nl)
        assert len(mapping.aig) == len(nl)

    def test_every_original_node_mapped(self):
        nl = random_sequential_netlist(
            GeneratorConfig(n_pis=4, n_dffs=3, n_gates=25), seed=9
        )
        mapping = to_aig(nl)
        assert set(mapping.fanout_of.keys()) == set(nl.nodes())

    def test_pos_preserved(self):
        nl = random_sequential_netlist(
            GeneratorConfig(n_pis=4, n_dffs=3, n_gates=25, n_pos=3), seed=2
        )
        mapping = to_aig(nl)
        assert len(mapping.aig.pos) == len(nl.pos)

    def test_dff_count_preserved(self):
        nl = random_sequential_netlist(
            GeneratorConfig(n_pis=4, n_dffs=7, n_gates=25), seed=4
        )
        mapping = to_aig(nl)
        assert len(mapping.aig.dffs) == 7


class TestSequentialEquivalence:
    @pytest.mark.parametrize("seed", [11, 23, 37])
    def test_simulation_statistics_identical(self, seed):
        nl = random_sequential_netlist(
            GeneratorConfig(n_pis=5, n_dffs=5, n_gates=45), seed=seed
        )
        mapping = to_aig(nl)
        wl = Workload(np.linspace(0.1, 0.9, len(nl.pis)), seed=seed)
        cfg = SimConfig(cycles=80, streams=64, seed=seed)
        r_orig = simulate(nl, wl, cfg)
        r_aig = simulate(mapping.aig, wl, cfg)
        for old, new in mapping.fanout_of.items():
            assert r_orig.logic_prob[old] == pytest.approx(
                r_aig.logic_prob[new], abs=1e-12
            )
            assert r_orig.tr01_prob[old] == pytest.approx(
                r_aig.tr01_prob[new], abs=1e-12
            )
            assert r_orig.tr10_prob[old] == pytest.approx(
                r_aig.tr10_prob[new], abs=1e-12
            )

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_property_random_circuits_equivalent(self, seed):
        nl = random_sequential_netlist(
            GeneratorConfig(n_pis=4, n_dffs=3, n_gates=20), seed=seed
        )
        mapping = to_aig(nl)
        wl = Workload(np.full(len(nl.pis), 0.5), seed=seed)
        cfg = SimConfig(cycles=24, streams=64, seed=seed, warmup=2)
        r_orig = simulate(nl, wl, cfg)
        r_aig = simulate(mapping.aig, wl, cfg)
        for old, new in mapping.fanout_of.items():
            assert r_orig.logic_prob[old] == r_aig.logic_prob[new]
