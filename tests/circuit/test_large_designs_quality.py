"""Deeper quality checks of the six Table IV stand-in designs.

These validate the *structural claims* DESIGN.md makes about the synthetic
IP cores — realistic logic depth, sequential feedback, reconvergence, and
workload-dependent idling — at reduced scale so the suite stays fast.
"""

import numpy as np
import pytest

from repro.circuit.analysis import structural_profile
from repro.circuit.benchmarks import LARGE_DESIGN_SPECS, large_design
from repro.sim.logicsim import SimConfig, simulate
from repro.sim.workload import Workload
from repro.sim.workload import testbench_workload as make_tb_workload

SCALE = 0.0625  # keep the suite fast; structure is scale-invariant


@pytest.fixture(scope="module")
def designs():
    return {
        name: large_design(name, seed=7, scale=SCALE)
        for name in LARGE_DESIGN_SPECS
    }


class TestStructure:
    def test_all_profiles_sane(self, designs):
        for name, nl in designs.items():
            p = structural_profile(nl)
            assert p.dffs > 0, name
            assert 3 <= p.max_depth <= 120, (name, p.max_depth)
            assert p.max_fanout >= 2, name

    def test_sequential_feedback_present(self, designs):
        """Counters/FSMs/accumulators imply DFFs on cycles."""
        for name, nl in designs.items():
            p = structural_profile(nl)
            assert p.feedback_dffs > 0, name

    def test_reconvergence_present(self, designs):
        """The structures probabilistic methods get wrong must exist."""
        for name, nl in designs.items():
            p = structural_profile(nl)
            assert p.reconvergent_count > 0, name

    def test_different_designs_differ(self, designs):
        sizes = [len(nl) for nl in designs.values()]
        assert len(set(sizes)) == len(sizes)


class TestActivityBehaviour:
    def test_activity_responds_to_workload(self, designs):
        nl = designs["ptc"]
        cfg = SimConfig(cycles=64, seed=1)
        quiet = simulate(nl, Workload(np.full(len(nl.pis), 0.02)), cfg)
        busy = simulate(nl, Workload(np.full(len(nl.pis), 0.5)), cfg)
        assert busy.toggle_rate.mean() > quiet.toggle_rate.mean()

    def test_parked_controls_idle_modules(self, designs):
        for name in ("ptc", "rtcclock"):
            nl = designs[name]
            res = simulate(
                nl, Workload(np.full(len(nl.pis), 0.01)), SimConfig(cycles=64)
            )
            assert res.idle_fraction(1e-3) > 0.2, name

    def test_testbench_workload_partial_activity(self, designs):
        nl = designs["mem_ctrl"]
        wl = make_tb_workload(nl, seed=3, active_fraction=0.55)
        res = simulate(nl, wl, SimConfig(cycles=64))
        idle = res.idle_fraction(1e-3)
        assert 0.0 < idle < 0.95, idle

    def test_spine_counter_always_active(self, designs):
        """The control spine free-runs, so even a dead workload shows
        *some* activity (the clock never gates off completely)."""
        nl = designs["ac97_ctrl"]
        res = simulate(
            nl, Workload(np.zeros(len(nl.pis))), SimConfig(cycles=64)
        )
        assert res.toggle_rate.max() > 0.4
