"""Tests for the AIGER frontend (repro.circuit.aiger).

Round-trips are checked at two strengths: *structural* (fingerprints of
re-read netlists match across formats and repeated trips) and *semantic*
(PO activity under simulation is unchanged).  A netlist fresh from memory
may serialize with a different AND ordering than its own read-back (NOT
node ids interleave among ANDs), so idempotence is asserted after one
trip — write(read(write(x))) == write(read(x)) — which is the invariant
external tools rely on.
"""

import numpy as np
import pytest

from repro.circuit.aig import to_aig
from repro.circuit.aiger import (
    read_aiger,
    read_aiger_file,
    write_aiger,
    write_aiger_file,
)
from repro.circuit.gates import GateType
from repro.circuit.generate import GeneratorConfig, random_sequential_netlist
from repro.circuit.netlist import Netlist, NetlistError
from repro.sim.logicsim import SimConfig, simulate
from repro.sim.workload import Workload

TOGGLE = """aag 7 2 1 2 4
2
4
6 12
12
10
8 4 2
10 9 6
12 8 7
14 13 11
i0 en
i1 clr
l0 state
c
toggle
"""


def random_aig(seed: int, n_gates: int = 60) -> Netlist:
    nl = random_sequential_netlist(
        GeneratorConfig(n_pis=5, n_dffs=4, n_gates=n_gates, n_pos=3), seed=seed
    )
    return to_aig(nl).aig


def po_activity(nl: Netlist) -> list[tuple[float, float]]:
    """(logic_prob, toggle_rate) per PO in declaration order."""
    n_pis = len(nl.pis)
    wl = Workload(np.full(n_pis, 0.5), seed=3)
    res = simulate(nl, wl, SimConfig(cycles=64, streams=64, seed=1))
    return [
        (float(res.logic_prob[po]), float(res.toggle_rate[po])) for po in nl.pos
    ]


class TestReadAscii:
    def test_counts_and_names(self):
        nl = read_aiger(TOGGLE)
        assert len(nl.pis) == 2
        assert len(nl.dffs) == 1
        assert len(nl.pos) == 2
        assert nl.node_name(nl.pis[0]) == "en"
        assert nl.node_name(nl.pis[1]) == "clr"
        assert nl.node_name(nl.dffs[0]) == "state"
        assert nl.name == "toggle"

    def test_negated_literals_become_not_nodes(self):
        nl = read_aiger(TOGGLE)
        kinds = {nl.gate_type(n) for n in nl.nodes()}
        assert GateType.NOT in kinds and GateType.AND in kinds

    def test_const_literals(self):
        # PO wired to constant-false (literal 0) and constant-true (1).
        text = "aag 1 1 0 2 0\n2\n0\n1\n"
        nl = read_aiger(text)
        kinds = [nl.gate_type(po) for po in nl.pos]
        assert GateType.CONST0 in kinds and GateType.CONST1 in kinds

    def test_latch_init_one_rejected(self):
        text = "aag 2 1 1 1 0\n2\n4 2 1\n4\n"
        with pytest.raises(NetlistError, match="init"):
            read_aiger(text)

    def test_property_sections_rejected(self):
        text = "aag 1 1 0 1 0 1\n2\n2\n2\n"
        with pytest.raises(NetlistError, match="section"):
            read_aiger(text)

    def test_malformed_header_rejected(self):
        with pytest.raises(NetlistError):
            read_aiger("aag 1 1\n2\n")


class TestRoundTrip:
    @pytest.mark.parametrize("seed", [0, 3, 11])
    def test_ascii_idempotent_after_one_trip(self, seed):
        t1 = write_aiger(random_aig(seed))
        t2 = write_aiger(read_aiger(t1))
        t3 = write_aiger(read_aiger(t2))
        assert t2 == t3

    @pytest.mark.parametrize("seed", [0, 3, 11])
    def test_binary_idempotent(self, seed):
        b1 = write_aiger(read_aiger(write_aiger(random_aig(seed))), binary=True)
        b2 = write_aiger(read_aiger(b1), binary=True)
        assert b1 == b2

    @pytest.mark.parametrize("seed", [0, 7])
    def test_formats_agree_structurally(self, seed):
        nl = random_aig(seed)
        via_ascii = read_aiger(write_aiger(nl))
        via_binary = read_aiger(write_aiger(nl, binary=True))
        assert via_ascii.fingerprint() == via_binary.fingerprint()

    @pytest.mark.parametrize("binary", [False, True])
    def test_semantics_preserved(self, binary):
        nl = random_aig(5)
        back = read_aiger(write_aiger(nl, binary=binary))
        assert po_activity(back) == po_activity(nl)

    def test_latches_survive(self):
        nl = random_aig(2)
        back = read_aiger(write_aiger(nl))
        assert len(back.dffs) == len(nl.dffs)
        assert len(back.pis) == len(nl.pis)

    def test_name_survives(self):
        nl = random_aig(1)
        assert read_aiger(write_aiger(nl)).name == nl.name
        assert read_aiger(write_aiger(nl, binary=True)).name == nl.name

    def test_symbols_survive(self):
        back = read_aiger(write_aiger(read_aiger(TOGGLE)))
        assert back.node_name(back.pis[0]) == "en"
        assert back.node_name(back.dffs[0]) == "state"


class TestWriter:
    def test_non_aig_gate_rejected(self):
        nl = Netlist("bad")
        a = nl.add_pi("a")
        b = nl.add_pi("b")
        nl.add_po(nl.add_gate(GateType.XOR, [a, b], "x"))
        with pytest.raises(NetlistError, match="to_aig"):
            write_aiger(nl)

    def test_wide_and_rejected(self):
        nl = Netlist("wide")
        pis = [nl.add_pi(f"p{i}") for i in range(3)]
        nl.add_po(nl.add_gate(GateType.AND, pis, "a3"))
        with pytest.raises(NetlistError, match="to_aig"):
            write_aiger(nl)

    def test_binary_detected_by_sniff(self):
        data = write_aiger(random_aig(4), binary=True)
        assert data.startswith(b"aig ")
        assert read_aiger(data).validate() is None


class TestFiles:
    def test_suffix_selects_format(self, tmp_path):
        nl = random_aig(9)
        pa = tmp_path / "x.aag"
        pb = tmp_path / "x.aig"
        write_aiger_file(nl, pa)
        write_aiger_file(nl, pb)
        assert pa.read_bytes().startswith(b"aag ")
        assert pb.read_bytes().startswith(b"aig ")
        assert read_aiger_file(pa).fingerprint() == read_aiger_file(pb).fingerprint()

    def test_stem_names_anonymous_file(self, tmp_path):
        nl = random_aig(9)
        nl.name = "aiger"  # writer's comment carries the default name
        p = tmp_path / "mydesign.aag"
        write_aiger_file(nl, p)
        assert read_aiger_file(p).name == "mydesign"
