"""Hypothesis-driven properties of the netlist IR and its transforms."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.circuit.aig import to_aig
from repro.circuit.bench import parse_bench, write_bench
from repro.circuit.gates import GateType
from repro.circuit.generate import GeneratorConfig, random_sequential_netlist
from repro.circuit.levelize import levelize


def random_nl(seed: int, n_dffs: int = 3, n_gates: int = 25):
    return random_sequential_netlist(
        GeneratorConfig(n_pis=4, n_dffs=n_dffs, n_gates=n_gates), seed=seed
    )


class TestRoundTripProperties:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 100_000))
    def test_bench_roundtrip_preserves_everything(self, seed):
        nl = random_nl(seed)
        again = parse_bench(write_bench(nl))
        assert len(again) == len(nl)
        assert again.type_counts() == nl.type_counts()
        for node in nl.nodes():
            name = nl.node_name(node)
            other = again.node_by_name(name)
            assert [again.node_name(f) for f in again.fanins(other)] == [
                nl.node_name(f) for f in nl.fanins(node)
            ]
            assert (node in nl.pos) == (other in again.pos)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 100_000))
    def test_double_lowering_stable(self, seed):
        nl = random_nl(seed)
        once = to_aig(nl).aig
        twice = to_aig(once).aig
        assert len(twice) == len(once), "lowering an AIG must be identity-sized"

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 100_000))
    def test_copy_equivalence(self, seed):
        nl = random_nl(seed)
        dup = nl.copy()
        assert len(dup) == len(nl)
        for node in nl.nodes():
            assert dup.fanins(node) == nl.fanins(node)
            assert dup.gate_type(node) == nl.gate_type(node)


class TestStructuralProperties:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 100_000))
    def test_fanout_fanin_duality(self, seed):
        nl = random_nl(seed)
        fanouts = nl.fanouts()
        # edge (u -> v) appears in v's fanins iff v appears in u's fanouts,
        # with multiplicity.
        for v in nl.nodes():
            for u in nl.fanins(v):
                assert fanouts[u].count(v) == nl.fanins(v).count(u)
        total = sum(len(f) for f in fanouts)
        assert total == nl.num_edges

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 100_000))
    def test_aig_lowering_grows_monotonically(self, seed):
        nl = random_nl(seed)
        aig = to_aig(nl).aig
        assert len(aig) >= len(nl.pis) + len(nl.dffs)
        assert len(aig.pis) == len(nl.pis)
        assert len(aig.dffs) == len(nl.dffs)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 100_000), n_dffs=st.integers(0, 6))
    def test_levelization_idempotent(self, seed, n_dffs):
        nl = random_nl(seed, n_dffs=n_dffs)
        a = levelize(nl)
        b = levelize(nl)
        assert (a.level == b.level).all()
        assert (a.reverse_level == b.reverse_level).all()

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 100_000))
    def test_subcircuit_of_everything_is_identity_sized(self, seed):
        nl = random_nl(seed)
        sub = nl.subcircuit(list(nl.nodes()))
        assert len(sub) == len(nl)
        assert sub.type_counts() == nl.type_counts()

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 100_000), keep=st.integers(3, 12))
    def test_arbitrary_subcircuits_validate(self, seed, keep):
        nl = random_nl(seed)
        rng = np.random.default_rng(seed)
        nodes = rng.choice(len(nl), size=min(keep, len(nl)), replace=False)
        sub = nl.subcircuit([int(n) for n in nodes])
        sub.validate()
