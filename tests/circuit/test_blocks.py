"""Functional tests of the RTL building blocks (repro.circuit.blocks).

Each block is verified behaviourally: build it, drive deterministic
stimulus through the logic simulator, and check the observed sequence
against the block's specification (counters count, adders add, ...).
"""

import numpy as np
import pytest

from repro.circuit.blocks import BlockBuilder
from repro.sim.logicsim import Simulator

ONES = np.uint64(0xFFFFFFFFFFFFFFFF)
ZERO = np.uint64(0)


def drive(nl, pi_bits: list[list[int]], cycles: int):
    """Simulate stream 0 with per-cycle PI bits; returns value history."""
    sim = Simulator(nl, streams=64)
    sim.reset()
    history = []
    for c in range(cycles):
        words = np.array(
            [[ONES if pi_bits[k][c] else ZERO] for k in range(len(pi_bits))],
            dtype=np.uint64,
        )
        vals = sim.step(words, c)
        history.append((vals[:, 0] & np.uint64(1)).astype(int).copy())
        sim.latch()
    return history


def bit_sequence(history, node):
    return [h[node] for h in history]


class TestCounter:
    def test_counts_binary(self):
        b = BlockBuilder("cnt")
        bits = b.counter(3)
        nl = b.finish()
        hist = drive(nl, [], cycles=9)
        values = [
            sum(h[bits[k]] << k for k in range(3)) for h in hist
        ]
        assert values == [0, 1, 2, 3, 4, 5, 6, 7, 0]

    def test_enable_freezes(self):
        b = BlockBuilder("cnt_en")
        en = b.pi("en")
        bits = b.counter(3, enable=en)
        nl = b.finish()
        stim = [[1, 1, 0, 0, 1]]
        hist = drive(nl, stim, cycles=5)
        values = [sum(h[bits[k]] << k for k in range(3)) for h in hist]
        # counts on en=1 cycles only: 0,1,(hold 2? ...)
        assert values == [0, 1, 2, 2, 2]


class TestShiftRegister:
    def test_delays_input(self):
        b = BlockBuilder("sr")
        d = b.pi("d")
        taps = b.shift_register(d, 3)
        nl = b.finish()
        stim = [[1, 0, 1, 1, 0, 0, 0]]
        hist = drive(nl, stim, cycles=7)
        seq_in = stim[0]
        seq_out = bit_sequence(hist, taps[-1])
        # Tap k delays by k+1 cycles; depth 3 -> delay 3.
        assert seq_out[3:] == seq_in[: 7 - 3]


class TestRippleAdder:
    @pytest.mark.parametrize("a,b_val", [(0, 0), (3, 5), (7, 7), (6, 1)])
    def test_adds(self, a, b_val):
        builder = BlockBuilder("add")
        a_pis = [builder.pi(f"a{k}") for k in range(3)]
        b_pis = [builder.pi(f"b{k}") for k in range(3)]
        total, carry = builder.ripple_adder(a_pis, b_pis)
        nl = builder.finish()
        stim = [[(a >> k) & 1] for k in range(3)] + [
            [(b_val >> k) & 1] for k in range(3)
        ]
        hist = drive(nl, stim, cycles=1)
        got = sum(hist[0][total[k]] << k for k in range(3))
        got += hist[0][carry] << 3
        assert got == a + b_val

    def test_width_mismatch_rejected(self):
        b = BlockBuilder("bad")
        with pytest.raises(ValueError):
            b.ripple_adder([b.pi()], [b.pi(), b.pi()])


class TestDecoder:
    def test_one_hot_output(self):
        b = BlockBuilder("dec")
        sel = [b.pi(f"s{k}") for k in range(2)]
        outs = b.decoder(sel)
        nl = b.finish()
        for code in range(4):
            stim = [[(code >> k) & 1] for k in range(2)]
            hist = drive(nl, stim, cycles=1)
            hot = [hist[0][o] for o in outs]
            assert hot == [1 if i == code else 0 for i in range(4)]


class TestMuxTree:
    def test_selects_input(self):
        b = BlockBuilder("mux")
        sel = [b.pi(f"s{k}") for k in range(2)]
        ins = [b.pi(f"i{k}") for k in range(4)]
        out = b.mux_tree(sel, ins)
        nl = b.finish()
        for code in range(4):
            for hot in range(4):
                stim = [[(code >> k) & 1] for k in range(2)]
                stim += [[1 if i == hot else 0] for i in range(4)]
                hist = drive(nl, stim, cycles=1)
                assert hist[0][out] == (1 if hot == code else 0)

    def test_wrong_input_count_rejected(self):
        b = BlockBuilder("bad")
        with pytest.raises(ValueError):
            b.mux_tree([b.pi()], [b.pi()])


class TestEquality:
    def test_matches_only_equal(self):
        b = BlockBuilder("eq")
        a_pis = [b.pi(f"a{k}") for k in range(2)]
        b_pis = [b.pi(f"b{k}") for k in range(2)]
        eq = b.equality(a_pis, b_pis)
        nl = b.finish()
        for x in range(4):
            for y in range(4):
                stim = [[(x >> k) & 1] for k in range(2)]
                stim += [[(y >> k) & 1] for k in range(2)]
                hist = drive(nl, stim, cycles=1)
                assert hist[0][eq] == (1 if x == y else 0)


class TestParity:
    @pytest.mark.parametrize("value", range(8))
    def test_parity_of_three_bits(self, value):
        b = BlockBuilder("par")
        pis = [b.pi(f"i{k}") for k in range(3)]
        p = b.parity_tree(pis)
        nl = b.finish()
        stim = [[(value >> k) & 1] for k in range(3)]
        hist = drive(nl, stim, cycles=1)
        assert hist[0][p] == bin(value).count("1") % 2


class TestFsm:
    def test_ring_advances(self):
        b = BlockBuilder("fsm")
        adv = b.pi("adv")
        rst = b.pi("rst")
        states = b.fsm_one_hot(3, adv, rst)
        nl = b.finish()
        # reset pulse then advance every cycle
        stim = [[0, 1, 1, 1, 1], [1, 0, 0, 0, 0]]
        hist = drive(nl, stim, cycles=5)
        hots = [[h[s] for s in states] for h in hist]
        # after reset state0 hot; then the hot bit rotates
        assert hots[1] == [1, 0, 0]
        assert hots[2] == [0, 1, 0]
        assert hots[3] == [0, 0, 1]
        assert hots[4] == [1, 0, 0]

    def test_hold_when_not_advancing(self):
        b = BlockBuilder("fsm2")
        adv = b.pi("adv")
        rst = b.pi("rst")
        states = b.fsm_one_hot(3, adv, rst)
        nl = b.finish()
        stim = [[0, 1, 0, 0], [1, 0, 0, 0]]
        hist = drive(nl, stim, cycles=4)
        hots = [[h[s] for s in states] for h in hist]
        assert hots[2] == [0, 1, 0]
        assert hots[3] == [0, 1, 0], "state must hold with advance low"


class TestRegister:
    def test_register_bank_holds_without_enable(self):
        b = BlockBuilder("bank")
        en = b.pi("en")
        data = [b.pi("d0"), b.pi("d1")]
        regs = b.register_bank(data, enable=en)
        nl = b.finish()
        stim = [[1, 0, 0], [1, 0, 0], [1, 1, 1]]
        hist = drive(nl, stim, cycles=3)
        # captured on first cycle (en=1), held afterwards despite d changes
        assert bit_sequence(hist, regs[0])[1:] == [1, 1]
        assert bit_sequence(hist, regs[1])[1:] == [1, 1]

    def test_lfsr_validates(self):
        b = BlockBuilder("lfsr")
        b.lfsr(4)
        nl = b.finish()
        nl.validate()
        with pytest.raises(ValueError):
            BlockBuilder("x").lfsr(1)
