"""Tests for disjoint union / topological batching (repro.circuit.compose)."""

import numpy as np
import pytest

from repro.circuit.compose import disjoint_union
from repro.circuit.generate import GeneratorConfig, random_sequential_netlist
from repro.circuit.levelize import levelize
from repro.sim.logicsim import SimConfig, simulate
from repro.sim.workload import Workload


def members(seeds=(1, 2, 3)):
    return [
        random_sequential_netlist(
            GeneratorConfig(n_pis=4, n_dffs=3, n_gates=25), seed=s
        )
        for s in seeds
    ]


class TestDisjointUnion:
    def test_sizes_and_offsets(self):
        nls = members()
        m = disjoint_union(nls)
        assert m.sizes == tuple(len(nl) for nl in nls)
        assert m.offsets[0] == 0
        assert m.offsets[1] == len(nls[0])
        assert len(m.union) == sum(len(nl) for nl in nls)

    def test_union_validates(self):
        m = disjoint_union(members())
        m.union.validate()

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            disjoint_union([])

    def test_structure_preserved(self):
        nls = members()
        m = disjoint_union(nls)
        for k, nl in enumerate(nls):
            for node in nl.nodes():
                u = m.to_union(k, node)
                assert m.union.gate_type(u) == nl.gate_type(node)
                assert m.union.fanins(u) == tuple(
                    m.to_union(k, f) for f in nl.fanins(node)
                )

    def test_pi_order_is_member_order(self):
        nls = members()
        m = disjoint_union(nls)
        expected = [
            m.to_union(k, pi) for k, nl in enumerate(nls) for pi in nl.pis
        ]
        assert m.union.pis == expected

    def test_member_slice(self):
        nls = members()
        m = disjoint_union(nls)
        sl = m.member_slice(1)
        assert sl.stop - sl.start == len(nls[1])

    def test_simulation_matches_members(self):
        """Simulating the union == simulating each member separately."""
        nls = members()
        m = disjoint_union(nls)
        pi_probs = [np.linspace(0.2, 0.8, len(nl.pis)) for nl in nls]
        union_wl = Workload(np.concatenate(pi_probs), seed=9)
        cfg = SimConfig(cycles=60, streams=64, seed=9)
        union_res = simulate(m.union, union_wl, cfg)
        # Statistical equivalence: same PI probabilities produce the same
        # *expected* activity; with different concrete streams, compare
        # means loosely per member.
        for k, nl in enumerate(nls):
            res = simulate(nl, Workload(pi_probs[k], seed=9), cfg)
            sl = m.member_slice(k)
            assert union_res.logic_prob[sl].mean() == pytest.approx(
                res.logic_prob.mean(), abs=0.08
            )

    def test_levels_are_max_of_members(self):
        nls = members()
        m = disjoint_union(nls)
        union_max = levelize(m.union).max_level
        member_max = max(levelize(nl).max_level for nl in nls)
        assert union_max == member_max


class TestStitchedUnion:
    def test_stitched_pis_become_bufs(self):
        from repro.circuit.compose import Stitch, stitched_union
        from repro.circuit.gates import GateType

        ms = members()
        st = Stitch(src=0, src_node=0, dst=1, pi=0)
        mapping = stitched_union(ms, [st])
        union = mapping.union
        stitched_node = mapping.offsets[1] + ms[1].pis[0]
        assert union.gate_type(stitched_node) is GateType.BUF
        assert union.fanins(stitched_node) == (mapping.offsets[0] + 0,)
        assert union.validate() is None

    def test_backward_stitch_rejected(self):
        from repro.circuit.compose import Stitch, stitched_union
        from repro.circuit.netlist import NetlistError

        with pytest.raises((ValueError, NetlistError)):
            stitched_union(members(), [Stitch(src=1, src_node=0, dst=0, pi=0)])

    def test_duplicate_target_rejected(self):
        from repro.circuit.compose import Stitch, stitched_union
        from repro.circuit.netlist import NetlistError

        sts = [
            Stitch(src=0, src_node=0, dst=1, pi=0),
            Stitch(src=0, src_node=1, dst=1, pi=0),
        ]
        with pytest.raises((ValueError, NetlistError)):
            stitched_union(members(), sts)

    def test_non_pi_target_rejected(self):
        from repro.circuit.compose import Stitch, stitched_union
        from repro.circuit.netlist import NetlistError

        ms = members()
        not_a_pi = next(
            n for n in ms[1].nodes() if n not in ms[1].pis
        )
        with pytest.raises((ValueError, NetlistError)):
            stitched_union(ms, [Stitch(src=0, src_node=0, dst=1, pi=not_a_pi)])

    def test_unstitched_behaviour_matches_disjoint(self):
        from repro.circuit.compose import stitched_union

        ms = members()
        assert (
            stitched_union(ms, []).union.fingerprint()
            == disjoint_union(ms).union.fingerprint()
        )
