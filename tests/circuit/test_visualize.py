"""Tests for DOT export (repro.circuit.visualize)."""

import re

import pytest

from repro.circuit.library import library_circuit
from repro.circuit.visualize import levels_to_dot, to_dot


@pytest.fixture(scope="module")
def s27():
    return library_circuit("s27")


class TestToDot:
    def test_every_node_declared(self, s27):
        dot = to_dot(s27)
        for node in s27.nodes():
            assert f"n{node} [" in dot
            assert s27.node_name(node) in dot

    def test_every_edge_present(self, s27):
        dot = to_dot(s27)
        for node in s27.nodes():
            for f in s27.fanins(node):
                assert re.search(rf"n{f} -> n{node}\b", dot)

    def test_sequential_edges_dashed(self, s27):
        dot = to_dot(s27)
        for dff in s27.dffs:
            (src,) = s27.fanins(dff)
            line = next(
                l for l in dot.splitlines() if f"n{src} -> n{dff}" in l
            )
            assert "dashed" in line

    def test_pos_double_circled(self, s27):
        dot = to_dot(s27)
        for po in s27.pos:
            line = next(l for l in dot.splitlines() if f"n{po} [" in l)
            assert "peripheries=2" in line

    def test_valid_digraph_syntax(self, s27):
        dot = to_dot(s27)
        assert dot.startswith('digraph "s27" {')
        assert dot.rstrip().endswith("}")
        assert dot.count("{") == dot.count("}")


class TestLevelsToDot:
    def test_rank_clusters_cover_all_nodes(self, s27):
        dot = levels_to_dot(s27)
        ranked = set(re.findall(r"n(\d+)(?=[;\s]+)",
                     " ".join(re.findall(r"rank=same;([^}]*)", dot))))
        assert {str(n) for n in s27.nodes()} <= ranked

    def test_dff_edges_constraint_free(self, s27):
        dot = levels_to_dot(s27)
        for dff in s27.dffs:
            (src,) = s27.fanins(dff)
            line = next(
                l for l in dot.splitlines() if f"n{src} -> n{dff}" in l
            )
            assert "constraint=false" in line

    def test_balanced_braces(self, s27):
        dot = levels_to_dot(s27)
        assert dot.count("{") == dot.count("}")
