"""Tests for the random netlist generator (repro.circuit.generate)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.circuit.gates import GateType
from repro.circuit.generate import GeneratorConfig, random_sequential_netlist


class TestConfigValidation:
    def test_defaults_valid(self):
        GeneratorConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_pis": 0},
            {"n_gates": 0},
            {"max_fanin": 1},
            {"locality": 0.0},
            {"locality": 1.5},
            {"gate_mix": {GateType.AND: 0.0}},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            GeneratorConfig(**kwargs)


class TestGeneration:
    def test_deterministic(self):
        cfg = GeneratorConfig(n_pis=5, n_dffs=4, n_gates=30)
        a = random_sequential_netlist(cfg, seed=7)
        b = random_sequential_netlist(cfg, seed=7)
        assert len(a) == len(b)
        for n in a.nodes():
            assert a.gate_type(n) == b.gate_type(n)
            assert a.fanins(n) == b.fanins(n)

    def test_different_seeds_differ(self):
        cfg = GeneratorConfig(n_pis=5, n_dffs=4, n_gates=30)
        a = random_sequential_netlist(cfg, seed=1)
        b = random_sequential_netlist(cfg, seed=2)
        fanins_a = [a.fanins(n) for n in a.nodes()]
        fanins_b = [b.fanins(n) for n in b.nodes()]
        assert fanins_a != fanins_b

    def test_requested_counts(self):
        cfg = GeneratorConfig(n_pis=6, n_dffs=5, n_gates=33)
        nl = random_sequential_netlist(cfg, seed=0)
        assert len(nl.pis) == 6
        assert len(nl.dffs) == 5
        assert len(nl) == 6 + 5 + 33

    def test_validates(self):
        nl = random_sequential_netlist(
            GeneratorConfig(n_pis=4, n_dffs=3, n_gates=20), seed=3
        )
        nl.validate()  # raises on failure

    def test_pure_aig_mix(self):
        cfg = GeneratorConfig(
            n_pis=4,
            n_dffs=2,
            n_gates=25,
            gate_mix={GateType.AND: 0.6, GateType.NOT: 0.4},
            max_fanin=2,
        )
        nl = random_sequential_netlist(cfg, seed=1)
        assert nl.is_aig()

    def test_combinational_when_no_dffs(self):
        nl = random_sequential_netlist(
            GeneratorConfig(n_pis=4, n_dffs=0, n_gates=20), seed=5
        )
        assert not nl.dffs
        nl.validate()

    def test_pos_marked(self):
        nl = random_sequential_netlist(
            GeneratorConfig(n_pis=4, n_dffs=2, n_gates=20, n_pos=3), seed=5
        )
        assert 1 <= len(nl.pos) <= 3

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=100_000),
        n_dffs=st.integers(min_value=0, max_value=8),
        n_gates=st.integers(min_value=1, max_value=60),
    )
    def test_property_always_valid(self, seed, n_dffs, n_gates):
        nl = random_sequential_netlist(
            GeneratorConfig(n_pis=3, n_dffs=n_dffs, n_gates=n_gates), seed=seed
        )
        nl.validate()
        assert len(nl) == 3 + n_dffs + n_gates


class TestVectorizedGenerator:
    """The vectorized fanin-drawing path must mirror the loop path's
    contract (valid netlists, deterministic) and, below the auto
    threshold, must not disturb historical seeds at all."""

    SMALL = GeneratorConfig(n_pis=6, n_dffs=4, n_gates=80, n_pos=3)

    def test_method_validated(self):
        import pytest

        with pytest.raises(ValueError, match="method"):
            GeneratorConfig(method="turbo")

    def test_auto_keeps_historical_small_seeds(self):
        from dataclasses import replace

        for seed in (0, 7, 123):
            auto = random_sequential_netlist(self.SMALL, seed=seed)
            loop = random_sequential_netlist(
                replace(self.SMALL, method="loop"), seed=seed
            )
            assert auto.fingerprint() == loop.fingerprint()

    def test_vectorized_deterministic(self):
        from dataclasses import replace

        cfg = replace(self.SMALL, method="vectorized")
        a = random_sequential_netlist(cfg, seed=9)
        b = random_sequential_netlist(cfg, seed=9)
        assert a.fingerprint() == b.fingerprint()

    def test_vectorized_validates_at_scale(self):
        from dataclasses import replace

        cfg = replace(
            self.SMALL, n_gates=20_000, n_dffs=200, n_pis=64, method="vectorized"
        )
        nl = random_sequential_netlist(cfg, seed=3)
        assert nl.validate() is None
        assert len(nl) == 64 + 200 + 20_000

    def test_vectorized_no_duplicate_fanins(self):
        from dataclasses import replace

        cfg = replace(self.SMALL, n_gates=5000, method="vectorized")
        nl = random_sequential_netlist(cfg, seed=11)
        for node in nl.nodes():
            fanins = nl.fanins(node)
            if len(fanins) > 1:
                assert len(set(fanins)) == len(fanins)


class TestHierarchicalGenerator:
    def test_deterministic(self):
        from repro.circuit.generate import HierarchicalConfig, hierarchical_netlist

        cfg = HierarchicalConfig(n_tiles=3, n_clouds=2, cloud_gates=600)
        a = hierarchical_netlist(cfg, seed=5)
        b = hierarchical_netlist(cfg, seed=5)
        assert a.fingerprint() == b.fingerprint()
        assert a.validate() is None

    def test_size_scales_with_cloud_gates(self):
        from repro.circuit.generate import HierarchicalConfig, hierarchical_netlist

        small = hierarchical_netlist(
            HierarchicalConfig(n_tiles=2, n_clouds=2, cloud_gates=300), seed=1
        )
        big = hierarchical_netlist(
            HierarchicalConfig(n_tiles=2, n_clouds=2, cloud_gates=3000), seed=1
        )
        assert len(big) > len(small) * 3

    def test_config_validated(self):
        import pytest

        from repro.circuit.generate import HierarchicalConfig

        with pytest.raises(ValueError):
            HierarchicalConfig(n_tiles=0, n_clouds=0)
        with pytest.raises(ValueError):
            HierarchicalConfig(stitch_fraction=1.5)

    def test_default_config_reaches_10k_nodes(self):
        from repro.circuit.generate import HierarchicalConfig, hierarchical_netlist

        nl = hierarchical_netlist(HierarchicalConfig(), seed=0)
        assert len(nl) >= 10_000
        assert nl.validate() is None
