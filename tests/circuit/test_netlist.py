"""Tests for the netlist IR (repro.circuit.netlist)."""

import pytest

from repro.circuit.gates import GateType
from repro.circuit.netlist import Netlist, NetlistError


def toggle_circuit() -> Netlist:
    """a --AND(g)-- ff loop through an inverter."""
    nl = Netlist("toggle")
    a = nl.add_pi("a")
    ff = nl.add_dff(None, "ff")
    inv = nl.add_gate(GateType.NOT, [ff], "inv")
    g = nl.add_gate(GateType.AND, [a, inv], "g")
    nl.set_fanins(ff, [g])
    nl.add_po(g)
    nl.validate()
    return nl


class TestConstruction:
    def test_ids_are_sequential(self):
        nl = Netlist()
        assert nl.add_pi() == 0
        assert nl.add_pi() == 1
        assert nl.add_gate(GateType.AND, [0, 1]) == 2

    def test_len_and_counts(self):
        nl = toggle_circuit()
        assert len(nl) == 4
        assert nl.num_edges == 4  # inv<-ff, g<-a, g<-inv, ff<-g
        counts = nl.type_counts()
        assert counts[GateType.PI] == 1
        assert counts[GateType.DFF] == 1

    def test_duplicate_name_rejected(self):
        nl = Netlist()
        nl.add_pi("x")
        with pytest.raises(NetlistError):
            nl.add_pi("x")

    def test_node_by_name(self):
        nl = toggle_circuit()
        assert nl.node_by_name("ff") == 1
        with pytest.raises(NetlistError):
            nl.node_by_name("missing")

    def test_default_names_unique(self):
        nl = Netlist()
        ids = [nl.add_pi() for _ in range(5)]
        names = {nl.node_name(i) for i in ids}
        assert len(names) == 5

    def test_po_registration(self):
        nl = toggle_circuit()
        assert nl.pos == [3]
        nl.add_po(3)  # idempotent
        assert nl.pos == [3]
        with pytest.raises(NetlistError):
            nl.add_po(99)


class TestValidation:
    def test_empty_netlist_rejected(self):
        with pytest.raises(NetlistError):
            Netlist().validate()

    def test_dangling_dff_rejected(self):
        nl = Netlist()
        nl.add_pi("a")
        nl.add_dff(None, "ff")
        with pytest.raises(NetlistError, match="DFF"):
            nl.validate()

    def test_combinational_cycle_rejected(self):
        nl = Netlist()
        a = nl.add_pi("a")
        g1 = nl.add_gate(GateType.AND, [], "g1")
        g2 = nl.add_gate(GateType.AND, [g1, a], "g2")
        nl.set_fanins(g1, [g2, a])
        with pytest.raises(NetlistError, match="cycle"):
            nl.validate()

    def test_cycle_through_dff_accepted(self):
        toggle_circuit()  # validates internally

    def test_out_of_range_fanin_rejected(self):
        nl = Netlist()
        nl.add_pi("a")
        nl.add_gate(GateType.NOT, [7], "bad")
        with pytest.raises(NetlistError, match="out-of-range"):
            nl.validate()

    def test_unwired_gate_rejected_at_validate(self):
        nl = Netlist()
        nl.add_pi("a")
        nl.add_gate(GateType.NOT, [], "pending")
        with pytest.raises(NetlistError):
            nl.validate()

    def test_wrong_arity_rejected_eagerly(self):
        nl = Netlist()
        a = nl.add_pi("a")
        with pytest.raises(NetlistError):
            nl.add_gate(GateType.MUX, [a, a], "m")
        with pytest.raises(NetlistError):
            nl.add_gate(GateType.NOT, [a, a], "n")


class TestAccessors:
    def test_fanouts(self):
        nl = toggle_circuit()
        fo = nl.fanouts()
        inv, g = nl.node_by_name("inv"), nl.node_by_name("g")
        ff = nl.node_by_name("ff")
        assert fo[ff] == [inv]
        assert g in fo[inv]

    def test_is_aig(self):
        nl = toggle_circuit()
        assert nl.is_aig()
        nl2 = Netlist()
        a, b = nl2.add_pi(), nl2.add_pi()
        nl2.add_gate(GateType.OR, [a, b])
        assert not nl2.is_aig()

    def test_three_input_and_is_not_aig(self):
        nl = Netlist()
        pis = [nl.add_pi() for _ in range(3)]
        nl.add_gate(GateType.AND, pis)
        assert not nl.is_aig()

    def test_nodes_of_type(self):
        nl = toggle_circuit()
        assert nl.nodes_of_type(GateType.AND) == [3]
        assert nl.nodes_of_type(GateType.PI, GateType.DFF) == [0, 1]


class TestCopyAndSubcircuit:
    def test_copy_is_independent(self):
        nl = toggle_circuit()
        dup = nl.copy()
        dup.add_pi("extra")
        assert len(dup) == len(nl) + 1

    def test_subcircuit_cuts_boundary_to_pis(self):
        nl = toggle_circuit()
        inv, g = nl.node_by_name("inv"), nl.node_by_name("g")
        sub = nl.subcircuit([inv, g])
        sub.validate()
        # ff and a become cut PIs.
        assert len(sub.pis) == 2
        assert len(sub) == 4

    def test_subcircuit_keeps_dff_loop(self):
        nl = toggle_circuit()
        sub = nl.subcircuit(list(nl.nodes()))
        sub.validate()
        assert len(sub.dffs) == 1
        assert len(sub) == len(nl)

    def test_subcircuit_marks_observable_outputs(self):
        nl = toggle_circuit()
        sub = nl.subcircuit([nl.node_by_name("inv")])
        assert sub.pos, "extraction must expose at least one PO"
