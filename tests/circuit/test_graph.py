"""Tests for the learning-graph view (repro.circuit.graph)."""

import numpy as np
import pytest

from repro.circuit.aig import to_aig
from repro.circuit.gates import GateType
from repro.circuit.generate import GeneratorConfig, random_sequential_netlist
from repro.circuit.graph import CircuitGraph
from repro.circuit.netlist import Netlist, NetlistError


@pytest.fixture()
def graph() -> CircuitGraph:
    nl = random_sequential_netlist(
        GeneratorConfig(n_pis=5, n_dffs=4, n_gates=40), seed=8
    )
    return CircuitGraph(to_aig(nl).aig)


class TestConstruction:
    def test_rejects_non_aig(self):
        nl = Netlist()
        a, b = nl.add_pi(), nl.add_pi()
        nl.add_gate(GateType.OR, [a, b])
        with pytest.raises(NetlistError, match="AIG"):
            CircuitGraph(nl)

    def test_features_one_hot(self, graph):
        assert graph.features.shape == (graph.num_nodes, 4)
        assert (graph.features.sum(axis=1) == 1.0).all()
        assert (
            graph.features[np.arange(graph.num_nodes), graph.type_index] == 1.0
        ).all()

    def test_fanin_arrays(self, graph):
        nl = graph.netlist
        for i in nl.nodes():
            fs = nl.fanins(i)
            if len(fs) >= 1:
                assert graph.fanin0[i] == fs[0]
            else:
                assert graph.fanin0[i] == -1
            if len(fs) == 2:
                assert graph.fanin1[i] == fs[1]
            else:
                assert graph.fanin1[i] == -1

    def test_dff_src_matches_netlist(self, graph):
        nl = graph.netlist
        for d, s in zip(graph.dff_ids, graph.dff_src):
            assert nl.fanins(int(d)) == (int(s),)


class TestForwardBatches:
    def test_cover_all_comb_gates_once(self, graph):
        nodes = np.concatenate([b.nodes for b in graph.forward_batches])
        comb = np.concatenate([graph.and_ids, graph.not_ids])
        assert sorted(nodes.tolist()) == sorted(comb.tolist())

    def test_edges_match_fanins(self, graph):
        for batch in graph.forward_batches:
            for src, dst_local in zip(batch.src, batch.dst_local):
                node = batch.nodes[dst_local]
                assert src in graph.netlist.fanins(int(node))

    def test_edge_counts(self, graph):
        total = sum(b.num_edges for b in graph.forward_batches)
        expected = 2 * graph.and_ids.size + graph.not_ids.size
        assert total == expected

    def test_sources_precede_batch(self, graph):
        # Every message source lives at a strictly lower level.
        for batch in graph.forward_batches:
            for src, dst_local in zip(batch.src, batch.dst_local):
                node = batch.nodes[dst_local]
                assert graph.level[src] < graph.level[node]


class TestReverseBatches:
    def test_no_messages_from_dffs_to_data_sources(self, graph):
        dffs = set(int(d) for d in graph.dff_ids)
        for batch in graph.reverse_batches:
            assert not (set(batch.src.tolist()) & dffs)

    def test_edges_are_fanouts(self, graph):
        fanouts = graph.netlist.fanouts()
        for batch in graph.reverse_batches:
            for src, dst_local in zip(batch.src, batch.dst_local):
                node = int(batch.nodes[dst_local])
                assert int(src) in fanouts[node]

    def test_cover_all_comb_gates(self, graph):
        nodes = np.concatenate([b.nodes for b in graph.reverse_batches])
        comb = np.concatenate([graph.and_ids, graph.not_ids])
        assert sorted(nodes.tolist()) == sorted(comb.tolist())


class TestProperties:
    def test_counts(self, graph):
        nl = graph.netlist
        assert graph.num_pis == len(nl.pis)
        assert graph.num_dffs == len(nl.dffs)
        assert graph.num_nodes == len(nl)
        assert (graph.state_ids == graph.dff_ids).all()

    def test_repr_mentions_name(self, graph):
        assert graph.netlist.name in repr(graph)
