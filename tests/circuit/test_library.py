"""Tests for the classic circuit library (repro.circuit.library).

Each circuit is verified *behaviourally* against its specification, not
just structurally.
"""

import numpy as np
import pytest

from repro.circuit.library import library_circuit, library_names
from repro.sim.logicsim import Simulator

ONES = np.uint64(0xFFFFFFFFFFFFFFFF)


def drive(nl, stim_by_name, cycles):
    """Drive named PI bit sequences; return per-cycle node values (lane 0)."""
    pis = nl.pis
    names = [nl.node_name(p) for p in pis]
    sim = Simulator(nl, streams=64)
    sim.reset()
    history = []
    for c in range(cycles):
        words = np.array(
            [
                [ONES if stim_by_name.get(n, [0] * cycles)[c] else np.uint64(0)]
                for n in names
            ],
            dtype=np.uint64,
        )
        vals = sim.step(words, c)
        history.append((vals[:, 0] & np.uint64(1)).astype(int).copy())
        sim.latch()
    return history


class TestCatalogue:
    def test_names(self):
        assert set(library_names()) == {
            "s27",
            "updown2",
            "traffic",
            "parity_acc",
            "gray3",
        }

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            library_circuit("s9999")

    @pytest.mark.parametrize("name", library_names())
    def test_all_valid_and_sequential(self, name):
        nl = library_circuit(name)
        nl.validate()
        assert nl.dffs, f"{name} should be sequential"
        assert nl.pos

    def test_fresh_copies(self):
        a = library_circuit("s27")
        b = library_circuit("s27")
        assert a is not b


class TestGray3:
    def test_one_bit_flips_per_cycle(self):
        nl = library_circuit("gray3")
        hist = drive(nl, {}, 10)
        g = [nl.node_by_name(n) for n in ("g0", "g1", "g2")]
        codes = [tuple(h[x] for x in g) for h in hist]
        for prev, cur in zip(codes, codes[1:]):
            flips = sum(a != b for a, b in zip(prev, cur))
            assert flips == 1, (prev, cur)

    def test_visits_all_eight_codes(self):
        nl = library_circuit("gray3")
        hist = drive(nl, {}, 8)
        g = [nl.node_by_name(n) for n in ("g0", "g1", "g2")]
        codes = {tuple(h[x] for x in g) for h in hist}
        assert len(codes) == 8


class TestParityAcc:
    def test_accumulates_parity(self):
        nl = library_circuit("parity_acc")
        bits = [1, 1, 0, 1, 0, 0, 1, 1]
        hist = drive(nl, {"bit": bits, "clear": [0] * 8}, 8)
        par = nl.node_by_name("parity")
        running = 0
        for c, b in enumerate(bits):
            # DFF shows the parity of bits seen *before* this cycle.
            assert hist[c][par] == running
            running ^= b

    def test_clear_resets(self):
        nl = library_circuit("parity_acc")
        hist = drive(
            nl, {"bit": [1, 0, 0, 0], "clear": [0, 1, 0, 0]}, 4
        )
        par = nl.node_by_name("parity")
        assert hist[1][par] == 1  # accumulated the first bit
        assert hist[2][par] == 0  # cleared


class TestUpDown2:
    def test_counts_up(self):
        nl = library_circuit("updown2")
        hist = drive(nl, {"up": [1] * 6, "en": [1] * 6}, 6)
        q0, q1 = nl.node_by_name("q0"), nl.node_by_name("q1")
        values = [h[q0] + 2 * h[q1] for h in hist]
        assert values == [0, 1, 2, 3, 0, 1]

    def test_counts_down(self):
        nl = library_circuit("updown2")
        hist = drive(nl, {"up": [0] * 5, "en": [1] * 5}, 5)
        q0, q1 = nl.node_by_name("q0"), nl.node_by_name("q1")
        values = [h[q0] + 2 * h[q1] for h in hist]
        assert values == [0, 3, 2, 1, 0]

    def test_enable_holds(self):
        nl = library_circuit("updown2")
        hist = drive(nl, {"up": [1] * 4, "en": [1, 0, 0, 1]}, 4)
        q0, q1 = nl.node_by_name("q0"), nl.node_by_name("q1")
        values = [h[q0] + 2 * h[q1] for h in hist]
        assert values == [0, 1, 1, 1]


class TestTraffic:
    def test_exactly_one_light_after_reset(self):
        nl = library_circuit("traffic")
        stim = {"rst": [1] + [0] * 11}
        hist = drive(nl, stim, 12)
        lights = [nl.node_by_name(n) for n in ("red", "yellow", "green")]
        for h in hist[2:]:
            assert sum(h[l] for l in lights) == 1

    def test_cycles_red_green_yellow(self):
        nl = library_circuit("traffic")
        stim = {"rst": [1] + [0] * 15}
        hist = drive(nl, stim, 16)
        lights = [nl.node_by_name(n) for n in ("red", "green", "yellow")]
        seen = []
        for h in hist[2:]:
            hot = [name for name, l in zip("RGY", lights) if h[l]]
            if hot and (not seen or seen[-1] != hot[0]):
                seen.append(hot[0])
        # order after reset: red -> green -> yellow -> red ...
        assert "".join(seen[:4]) in ("RGYR", "RGY")


class TestS27:
    def test_structure_matches_iscas(self):
        nl = library_circuit("s27")
        assert len(nl.pis) == 4
        assert len(nl.dffs) == 3
        assert len(nl.pos) == 1
        # 17 nodes total: 4 PI + 3 DFF + 10 gates.
        assert len(nl) == 17

    def test_simulates(self):
        from repro.sim.logicsim import SimConfig, simulate
        from repro.sim.workload import random_workload

        nl = library_circuit("s27")
        res = simulate(nl, random_workload(nl, 1), SimConfig(cycles=64))
        assert (res.logic_prob >= 0).all() and (res.logic_prob <= 1).all()
