"""Tests for structural netlist analysis (repro.circuit.analysis)."""

import pytest

from repro.circuit.analysis import (
    fanout_histogram,
    feedback_register_count,
    logic_depth_histogram,
    reconvergent_nodes,
    sequential_sccs,
    structural_profile,
)
from repro.circuit.gates import GateType
from repro.circuit.generate import GeneratorConfig, random_sequential_netlist
from repro.circuit.library import library_circuit
from repro.circuit.netlist import Netlist


def diamond() -> Netlist:
    """x feeds two paths that reconverge at g."""
    nl = Netlist("diamond")
    x = nl.add_pi("x")
    y = nl.add_pi("y")
    a = nl.add_gate(GateType.NOT, [x], "a")
    b = nl.add_gate(GateType.AND, [x, y], "b")
    g = nl.add_gate(GateType.AND, [a, b], "g")
    nl.add_po(g)
    nl.validate()
    return nl


def tree() -> Netlist:
    nl = Netlist("tree")
    pis = [nl.add_pi(f"p{k}") for k in range(4)]
    g1 = nl.add_gate(GateType.AND, pis[:2], "g1")
    g2 = nl.add_gate(GateType.AND, pis[2:], "g2")
    top = nl.add_gate(GateType.AND, [g1, g2], "top")
    nl.add_po(top)
    nl.validate()
    return nl


class TestReconvergence:
    def test_diamond_detected(self):
        nl = diamond()
        reconv = reconvergent_nodes(nl)
        assert nl.node_by_name("g") in reconv

    def test_tree_clean(self):
        assert reconvergent_nodes(tree()) == []

    def test_dff_breaks_support(self):
        """DFF outputs are fresh sources in the cut graph, so a path
        through a DFF does not reconverge combinationally."""
        nl = Netlist("ff_cut")
        x = nl.add_pi("x")
        ff = nl.add_dff(x, "ff")
        g = nl.add_gate(GateType.AND, [x, ff], "g")
        nl.add_po(g)
        nl.validate()
        assert reconvergent_nodes(nl) == []

    def test_fraction_on_random_circuits(self):
        nl = random_sequential_netlist(
            GeneratorConfig(n_pis=5, n_dffs=4, n_gates=60,
                            reconvergence_bias=0.5),
            seed=3,
        )
        profile = structural_profile(nl)
        assert 0.0 < profile.reconvergent_fraction <= 1.0


class TestSequentialSccs:
    def test_toggle_loop_found(self):
        nl = Netlist("t")
        ff = nl.add_dff(None, "ff")
        inv = nl.add_gate(GateType.NOT, [ff], "inv")
        nl.set_fanins(ff, [inv])
        nl.add_po(ff)
        nl.validate()
        sccs = sequential_sccs(nl)
        assert sccs == [[ff, inv]]
        assert feedback_register_count(nl) == 1

    def test_feedforward_dff_no_scc(self):
        nl = Netlist("ff_fwd")
        x = nl.add_pi("x")
        ff = nl.add_dff(x, "ff")
        nl.add_po(ff)
        nl.validate()
        assert sequential_sccs(nl) == []
        assert feedback_register_count(nl) == 0

    def test_library_circuits_have_loops(self):
        for name in ("s27", "gray3", "traffic"):
            nl = library_circuit(name)
            assert sequential_sccs(nl), name

    def test_deep_circuit_no_recursion_error(self):
        nl = Netlist("deep")
        cur = nl.add_pi("a")
        for k in range(3000):
            cur = nl.add_gate(GateType.NOT, [cur], f"n{k}")
        nl.add_po(cur)
        nl.validate()
        assert sequential_sccs(nl) == []


class TestHistograms:
    def test_depth_histogram_partitions(self):
        nl = tree()
        hist = logic_depth_histogram(nl)
        assert sum(hist.values()) == len(nl)
        assert hist[0] == 4  # the PIs

    def test_fanout_histogram_partitions(self):
        nl = diamond()
        hist = fanout_histogram(nl)
        assert sum(hist.values()) == len(nl)
        assert hist.get(2, 0) >= 1  # x drives two paths


class TestProfile:
    def test_profile_fields_consistent(self):
        nl = library_circuit("s27")
        p = structural_profile(nl)
        assert p.nodes == len(nl)
        assert p.pis == 4
        assert p.dffs == 3
        assert p.feedback_dffs <= p.dffs
        assert p.max_fanout >= 1
        assert "s27" not in p.row() or True
        assert "reconv" in p.row()
