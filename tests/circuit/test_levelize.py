"""Tests for levelization (repro.circuit.levelize)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.circuit.gates import GateType
from repro.circuit.generate import GeneratorConfig, random_sequential_netlist
from repro.circuit.levelize import cut_fanins, levelize
from repro.circuit.netlist import Netlist


def small_seq() -> Netlist:
    nl = Netlist("seq")
    a = nl.add_pi("a")
    ff = nl.add_dff(None, "ff")
    g1 = nl.add_gate(GateType.AND, [a, ff], "g1")
    g2 = nl.add_gate(GateType.NOT, [g1], "g2")
    nl.set_fanins(ff, [g2])
    nl.add_po(g2)
    nl.validate()
    return nl


class TestCutFanins:
    def test_dff_edges_removed(self):
        nl = small_seq()
        cut = cut_fanins(nl)
        ff = nl.node_by_name("ff")
        assert cut[ff] == ()
        g1 = nl.node_by_name("g1")
        assert cut[g1] == nl.fanins(g1)


class TestLevels:
    def test_pi_level_zero_dff_level_one(self):
        nl = small_seq()
        lv = levelize(nl)
        assert lv.level[nl.node_by_name("a")] == 0
        assert lv.level[nl.node_by_name("ff")] == 1

    def test_gate_above_fanins(self):
        nl = small_seq()
        lv = levelize(nl)
        cut = cut_fanins(nl)
        for node in nl.nodes():
            for f in cut[node]:
                assert lv.level[node] > lv.level[f]

    def test_reverse_levels_sinks_zero(self):
        nl = small_seq()
        lv = levelize(nl)
        g2 = nl.node_by_name("g2")
        # g2 feeds only the DFF, whose incoming edge is cut -> g2 is a sink.
        assert lv.reverse_level[g2] == 0

    def test_forward_order_partitions_nodes(self):
        nl = small_seq()
        lv = levelize(nl)
        seen = np.concatenate(lv.forward_order)
        assert sorted(seen.tolist()) == list(range(len(nl)))

    def test_comb_batches_exclude_sources(self):
        nl = small_seq()
        lv = levelize(nl)
        comb = np.concatenate(lv.comb_forward)
        assert nl.node_by_name("a") not in comb
        assert nl.node_by_name("ff") not in comb
        assert nl.node_by_name("g1") in comb

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_property_levels_strictly_increase(self, seed):
        nl = random_sequential_netlist(
            GeneratorConfig(n_pis=4, n_dffs=3, n_gates=25), seed=seed
        )
        lv = levelize(nl)
        cut = cut_fanins(nl)
        for node in nl.nodes():
            for f in cut[node]:
                assert lv.level[node] > lv.level[f]
        # Reverse: every node with cut-graph fanout sits above its consumers.
        for node in nl.nodes():
            for f in cut[node]:
                assert lv.reverse_level[f] > lv.reverse_level[node]

    def test_comb_batches_cover_all_gates(self):
        nl = random_sequential_netlist(
            GeneratorConfig(n_pis=5, n_dffs=4, n_gates=40), seed=1
        )
        lv = levelize(nl)
        comb = np.concatenate(lv.comb_forward)
        gates = [
            n
            for n in nl.nodes()
            if nl.gate_type(n) not in (GateType.PI, GateType.DFF)
        ]
        assert sorted(comb.tolist()) == sorted(gates)
        rev = np.concatenate(lv.comb_reverse)
        assert sorted(rev.tolist()) == sorted(gates)

    def test_purely_combinational_circuit(self):
        nl = Netlist("comb")
        a, b = nl.add_pi("a"), nl.add_pi("b")
        g = nl.add_gate(GateType.AND, [a, b], "g")
        nl.add_po(g)
        lv = levelize(nl)
        assert lv.max_level == 1
        assert lv.level[g] == 1
