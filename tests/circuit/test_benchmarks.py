"""Tests for the benchmark suites (repro.circuit.benchmarks)."""

import numpy as np
import pytest

from repro.circuit.benchmarks import (
    FAMILY_STATS,
    LARGE_DESIGN_SPECS,
    family_subcircuits,
    large_design,
    training_corpus,
)
from repro.circuit.stats import corpus_stats


class TestFamilies:
    def test_known_families(self):
        assert set(FAMILY_STATS) == {"iscas89", "itc99", "opencores"}

    def test_paper_counts_recorded(self):
        assert FAMILY_STATS["iscas89"].paper_count == 1159
        assert FAMILY_STATS["itc99"].paper_count == 1691
        assert FAMILY_STATS["opencores"].paper_count == 7684

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError, match="unknown family"):
            family_subcircuits("nonexistent", 1)

    def test_deterministic(self):
        a = family_subcircuits("iscas89", 3, seed=5)
        b = family_subcircuits("iscas89", 3, seed=5)
        assert [len(x) for x in a] == [len(x) for x in b]

    def test_circuits_are_aig_and_valid(self):
        for nl in family_subcircuits("itc99", 3, seed=1):
            assert nl.is_aig()
            nl.validate()
            assert nl.dffs, "sequential family must contain DFFs"

    def test_non_aig_option(self):
        raw = family_subcircuits("itc99", 2, seed=1, as_aig=False)
        assert any(not nl.is_aig() for nl in raw)

    @pytest.mark.parametrize("family", sorted(FAMILY_STATS))
    def test_mean_size_tracks_family_target(self, family):
        circuits = family_subcircuits(family, 24, seed=0)
        st = corpus_stats(family, circuits)
        target = FAMILY_STATS[family].mean_nodes
        assert abs(st.mean_nodes - target) / target < 0.40, (
            st.mean_nodes,
            target,
        )

    def test_size_ordering_matches_paper(self):
        # ITC'99 sub-circuits are the largest on average, ISCAS'89 smallest.
        means = {
            fam: corpus_stats(fam, family_subcircuits(fam, 16, seed=2)).mean_nodes
            for fam in FAMILY_STATS
        }
        assert means["itc99"] > means["opencores"] > means["iscas89"]

    def test_training_corpus_counts(self):
        corpus = training_corpus({"iscas89": 2, "itc99": 3}, seed=0)
        assert len(corpus["iscas89"]) == 2
        assert len(corpus["itc99"]) == 3


class TestLargeDesigns:
    def test_all_six_specs(self):
        assert set(LARGE_DESIGN_SPECS) == {
            "noc_router",
            "pll",
            "ptc",
            "rtcclock",
            "ac97_ctrl",
            "mem_ctrl",
        }

    def test_unknown_design_rejected(self):
        with pytest.raises(ValueError, match="unknown design"):
            large_design("cpu9000")

    def test_ptc_matches_paper_size(self):
        nl = large_design("ptc")
        assert nl.is_aig()
        paper = LARGE_DESIGN_SPECS["ptc"].paper_nodes
        assert abs(len(nl) - paper) / paper < 0.15

    def test_scale_shrinks(self):
        full = large_design("ptc")
        small = large_design("ptc", scale=0.25)
        assert len(small) < len(full) / 2

    def test_deterministic(self):
        a = large_design("ptc", seed=3)
        b = large_design("ptc", seed=3)
        assert len(a) == len(b)

    def test_designs_have_state_and_outputs(self):
        nl = large_design("rtcclock", scale=0.125)
        assert nl.dffs
        assert nl.pos
        nl.validate()

    def test_idle_logic_under_parked_controls(self):
        """The low-power structure: with control PIs parked low, most gates
        show no transitions (paper Section V-A1: ~70 %)."""
        from repro.sim.logicsim import SimConfig, simulate
        from repro.sim.workload import Workload

        nl = large_design("ptc", scale=0.25)
        probs = np.full(len(nl.pis), 0.02)
        result = simulate(nl, Workload(probs, "parked"), SimConfig(cycles=64))
        assert result.idle_fraction(eps=1e-3) > 0.4
