"""Tests for corpus statistics (repro.circuit.stats)."""

import pytest

from repro.circuit.generate import GeneratorConfig, random_sequential_netlist
from repro.circuit.stats import corpus_stats, netlist_summary


def make(seeds):
    return [
        random_sequential_netlist(
            GeneratorConfig(n_pis=4, n_dffs=3, n_gates=10 + s), seed=s
        )
        for s in seeds
    ]


class TestCorpusStats:
    def test_basic_fields(self):
        circuits = make(range(4))
        st = corpus_stats("fam", circuits)
        assert st.num_circuits == 4
        assert st.mean_nodes == pytest.approx(
            sum(len(c) for c in circuits) / 4
        )
        assert st.mean_dffs == 3.0
        assert st.mean_pis == 4.0
        assert st.mean_levels > 0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            corpus_stats("fam", [])

    def test_row_renders(self):
        st = corpus_stats("fam", make([1]))
        assert "fam" in st.row()


class TestNetlistSummary:
    def test_counts_consistent(self):
        nl = make([5])[0]
        s = netlist_summary(nl)
        assert s["nodes"] == len(nl)
        assert s["pis"] == 4
        assert s["dffs"] == 3
        assert s["pos"] == len(nl.pos)
        assert s["edges"] == nl.num_edges
        assert s["nodes"] >= s["ands"] + s["nots"]
