"""Tests for structural hashing (repro.circuit.aig.strash)."""

import numpy as np
import pytest

from repro.circuit.aig import strash, to_aig
from repro.circuit.gates import GateType
from repro.circuit.generate import GeneratorConfig, random_sequential_netlist
from repro.circuit.netlist import Netlist, NetlistError
from repro.sim.logicsim import SimConfig, simulate
from repro.sim.workload import Workload, random_workload


class TestStrash:
    def test_merges_identical_ands(self):
        nl = Netlist("dup")
        a, b = nl.add_pi("a"), nl.add_pi("b")
        g1 = nl.add_gate(GateType.AND, [a, b], "g1")
        g2 = nl.add_gate(GateType.AND, [a, b], "g2")
        n1 = nl.add_gate(GateType.NOT, [g1], "n1")
        n2 = nl.add_gate(GateType.NOT, [g2], "n2")
        top = nl.add_gate(GateType.AND, [n1, n2], "top")
        nl.add_po(top)
        mapping = strash(nl)
        # g1==g2 merge, then n1==n2 merge: 7 -> 5 nodes.
        assert len(mapping.aig) == 5
        assert mapping.fanout_of[g1] == mapping.fanout_of[g2]
        assert mapping.fanout_of[n1] == mapping.fanout_of[n2]

    def test_commutative_and_merged(self):
        nl = Netlist("comm")
        a, b = nl.add_pi("a"), nl.add_pi("b")
        g1 = nl.add_gate(GateType.AND, [a, b], "g1")
        g2 = nl.add_gate(GateType.AND, [b, a], "g2")
        nl.add_po(g1)
        nl.add_po(g2)
        mapping = strash(nl)
        assert mapping.fanout_of[g1] == mapping.fanout_of[g2]

    def test_distinct_gates_kept(self):
        nl = Netlist("distinct")
        a, b, c = nl.add_pi("a"), nl.add_pi("b"), nl.add_pi("c")
        g1 = nl.add_gate(GateType.AND, [a, b], "g1")
        g2 = nl.add_gate(GateType.AND, [a, c], "g2")
        nl.add_po(g1)
        nl.add_po(g2)
        mapping = strash(nl)
        assert mapping.fanout_of[g1] != mapping.fanout_of[g2]

    def test_rejects_non_aig(self):
        nl = Netlist("bad")
        a, b = nl.add_pi("a"), nl.add_pi("b")
        nl.add_gate(GateType.OR, [a, b], "g")
        with pytest.raises(NetlistError):
            strash(nl)

    def test_dffs_never_merged(self):
        nl = Netlist("ffs")
        a = nl.add_pi("a")
        f1 = nl.add_dff(a, "f1")
        f2 = nl.add_dff(a, "f2")
        g = nl.add_gate(GateType.AND, [f1, f2], "g")
        nl.add_po(g)
        mapping = strash(nl)
        assert mapping.fanout_of[f1] != mapping.fanout_of[f2]

    def test_idempotent(self):
        nl = to_aig(
            random_sequential_netlist(
                GeneratorConfig(n_pis=5, n_dffs=3, n_gates=30), seed=7
            )
        ).aig
        once = strash(nl).aig
        twice = strash(once).aig
        assert len(twice) == len(once)

    @pytest.mark.parametrize("seed", [1, 5, 9])
    def test_function_preserved(self, seed):
        nl = to_aig(
            random_sequential_netlist(
                GeneratorConfig(n_pis=4, n_dffs=3, n_gates=30), seed=seed
            )
        ).aig
        mapping = strash(nl)
        assert len(mapping.aig) <= len(nl)
        wl = random_workload(nl, seed)
        cfg = SimConfig(cycles=50, seed=seed)
        a = simulate(nl, wl, cfg)
        b = simulate(mapping.aig, wl, cfg)
        for old, new in mapping.fanout_of.items():
            assert a.logic_prob[old] == b.logic_prob[new]
            assert a.tr01_prob[old] == b.tr01_prob[new]

    def test_pos_preserved(self):
        nl = Netlist("po")
        a, b = nl.add_pi("a"), nl.add_pi("b")
        g1 = nl.add_gate(GateType.AND, [a, b], "g1")
        g2 = nl.add_gate(GateType.AND, [a, b], "g2")
        nl.add_po(g2)
        mapping = strash(nl)
        assert mapping.aig.pos == [mapping.fanout_of[g2]]


class TestReadout:
    def test_modes_and_shapes(self):
        from repro.circuit.graph import CircuitGraph
        from repro.models.base import ModelConfig
        from repro.models.deepseq import DeepSeq

        nl = to_aig(
            random_sequential_netlist(
                GeneratorConfig(n_pis=4, n_dffs=2, n_gates=15), seed=2
            )
        ).aig
        graph = CircuitGraph(nl)
        wl = random_workload(nl, 1)
        model = DeepSeq(ModelConfig(hidden=8, iterations=2))
        assert model.readout(graph, wl, "mean").shape == (8,)
        assert model.readout(graph, wl, "max").shape == (8,)
        assert model.readout(graph, wl, "meanmax").shape == (16,)
        with pytest.raises(ValueError):
            model.readout(graph, wl, "sum")

    def test_readout_distinguishes_circuits(self):
        from repro.circuit.graph import CircuitGraph
        from repro.models.base import ModelConfig
        from repro.models.deepseq import DeepSeq

        model = DeepSeq(ModelConfig(hidden=8, iterations=2))
        embeddings = []
        for seed in (3, 4):
            nl = to_aig(
                random_sequential_netlist(
                    GeneratorConfig(n_pis=4, n_dffs=2, n_gates=15), seed=seed
                )
            ).aig
            graph = CircuitGraph(nl)
            embeddings.append(
                model.readout(graph, Workload(np.full(4, 0.5)), "mean")
            )
        assert not np.allclose(embeddings[0], embeddings[1])
