"""Tests for shared experiment plumbing (repro.experiments.common)."""

import pytest

from repro.experiments.common import (
    model_config,
    sim_config,
    training_circuits,
    training_dataset,
)
from repro.experiments.config import get_scale

MICRO = get_scale(
    "quick",
    family_counts={"iscas89": 2, "opencores": 2},
    sim_cycles=20,
    hidden=8,
    iterations=2,
)


class TestConfigs:
    def test_sim_config_fields(self):
        cfg = sim_config(MICRO)
        assert cfg.cycles == 20
        assert cfg.streams == MICRO.sim_streams

    def test_model_config_fields(self):
        cfg = model_config(MICRO, "attention")
        assert cfg.hidden == 8
        assert cfg.iterations == 2
        assert cfg.aggregator == "attention"


class TestDataset:
    def test_training_circuits_per_family(self):
        corpus = training_circuits(MICRO)
        assert set(corpus) == {"iscas89", "opencores"}
        assert len(corpus["iscas89"]) == 2

    def test_training_dataset_flattens(self):
        ds = training_dataset(MICRO)
        assert len(ds) == 4
        names = [s.name for s in ds]
        assert any("iscas89" in n for n in names)
        assert any("opencores" in n for n in names)

    def test_dataset_deterministic(self):
        a = training_dataset(MICRO)
        b = training_dataset(MICRO)
        assert [s.name for s in a] == [s.name for s in b]
        assert all(
            (x.target_lg == y.target_lg).all() for x, y in zip(a, b)
        )
