"""Tests for experiment configuration and reporting."""

import pytest

from repro.experiments.config import (
    PAPER,
    QUICK,
    ExperimentScale,
    ServeConfig,
    get_scale,
)
from repro.experiments.reporting import TextTable


class TestScales:
    def test_quick_defaults(self):
        assert QUICK.name == "quick"
        assert QUICK.design_scale < 1.0
        assert QUICK.epochs < PAPER.epochs

    def test_paper_matches_publication(self):
        assert PAPER.hidden == 64
        assert PAPER.iterations == 10
        assert PAPER.epochs == 50
        assert PAPER.lr == 1e-4
        assert PAPER.finetune_workloads == 1000
        assert PAPER.family_counts == {
            "iscas89": 1159,
            "itc99": 1691,
            "opencores": 7684,
        }
        assert PAPER.design_scale == 1.0
        # 10,000-cycle workloads realized as streams x cycles.
        assert PAPER.effective_samples >= 10_000

    def test_get_scale_lookup(self):
        assert get_scale("quick") is QUICK
        assert get_scale("paper") is PAPER
        with pytest.raises(ValueError):
            get_scale("warp")

    def test_get_scale_overrides(self):
        s = get_scale("quick", epochs=3, hidden=8)
        assert s.epochs == 3
        assert s.hidden == 8
        assert s.name == "quick"
        assert QUICK.epochs != 3, "overrides must not mutate the registry"


class TestServeConfig:
    def test_defaults_are_valid_and_bitwise_dtype(self):
        cfg = ServeConfig()
        assert cfg.workers >= 1
        assert cfg.dtype == "float64"  # the bitwise-guaranteed path
        assert cfg.max_pending >= cfg.batch_size

    def test_invalid_knobs_rejected(self):
        with pytest.raises(ValueError):
            ServeConfig(workers=0)
        with pytest.raises(ValueError):
            ServeConfig(batch_size=0)
        with pytest.raises(ValueError):
            ServeConfig(max_latency_ms=0)
        with pytest.raises(ValueError):
            ServeConfig(batch_size=8, max_pending=4)
        with pytest.raises(ValueError):
            ServeConfig(deadline_ms=-1.0)
        with pytest.raises(ValueError):
            ServeConfig(max_concurrent_sweeps=0)
        with pytest.raises(ValueError):
            ServeConfig(latency_window=0)
        with pytest.raises(ValueError, match="dtype"):
            ServeConfig(dtype="float46")  # typo must fail here, not in Server
        with pytest.raises(ValueError, match="dtype"):
            ServeConfig(dtype="float16")  # would silently break the guarantee

    def test_deadline_optional(self):
        assert ServeConfig().deadline_ms is None
        assert ServeConfig(deadline_ms=250.0).deadline_ms == 250.0


class TestTextTable:
    def test_renders_title_and_rows(self):
        t = TextTable("My Table", ["a", "bb"])
        t.add("x", 1.23456)
        t.set_footer("avg", 2.0)
        out = t.render()
        assert "My Table" in out
        assert "1.235" in out
        assert "avg" in out

    def test_column_alignment(self):
        t = TextTable("T", ["name", "v"])
        t.add("longer_name", 1)
        lines = t.render().splitlines()
        header, row = lines[2], lines[4]
        assert len(header) == len(row)
