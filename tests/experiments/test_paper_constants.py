"""Consistency checks of the transcribed paper values.

The PAPER_TABLE* dictionaries are the reference every regenerator prints
next to measured values; these tests confirm the transcription is
internally consistent with the averages the paper reports in its text.
"""

import pytest

from repro.experiments.table2 import PAPER_TABLE2
from repro.experiments.table3 import PAPER_TABLE3
from repro.experiments.table5 import PAPER_TABLE5
from repro.experiments.table6 import PAPER_TABLE6
from repro.experiments.table7 import PAPER_TABLE7


class TestTable2Constants:
    def test_deepseq_best_everywhere(self):
        ds_tr, ds_lg = PAPER_TABLE2[("deepseq", "dual_attention")]
        for key, (tr, lg) in PAPER_TABLE2.items():
            if key[0] != "deepseq":
                assert ds_tr < tr
                assert ds_lg < lg

    def test_published_relative_improvements(self):
        """Paper: 20.00 % TTR and 15.79 % TLG improvement over the best
        baseline (DAG-RecGNN + attention)."""
        base_tr, base_lg = PAPER_TABLE2[("dag_recgnn", "attention")]
        ds_tr, ds_lg = PAPER_TABLE2[("deepseq", "dual_attention")]
        assert (base_tr - ds_tr) / base_tr == pytest.approx(0.20, abs=0.005)
        assert (base_lg - ds_lg) / base_lg == pytest.approx(0.1579, abs=0.005)


class TestTable3Constants:
    def test_monotone_ablation(self):
        rows = [
            PAPER_TABLE3[("dag_recgnn", "attention")],
            PAPER_TABLE3[("deepseq", "attention")],
            PAPER_TABLE3[("deepseq", "dual_attention")],
        ]
        for (tr_a, lg_a), (tr_b, lg_b) in zip(rows, rows[1:]):
            assert tr_b <= tr_a
            assert lg_b <= lg_a

    def test_published_component_gains(self):
        """Paper: customized propagation alone gives 11.43 % / 2.11 %."""
        base = PAPER_TABLE3[("dag_recgnn", "attention")]
        prop = PAPER_TABLE3[("deepseq", "attention")]
        assert (base[0] - prop[0]) / base[0] == pytest.approx(0.1143, abs=0.01)
        assert (base[1] - prop[1]) / base[1] == pytest.approx(0.0211, abs=0.01)


class TestTable5Constants:
    def test_published_averages(self):
        """Paper text: 16.35 % / 8.48 % / 3.19 % averages."""
        n = len(PAPER_TABLE5)
        avg = [sum(v[i] for v in PAPER_TABLE5.values()) / n for i in range(3)]
        assert avg[0] == pytest.approx(16.35, abs=0.01)
        assert avg[1] == pytest.approx(8.48, abs=0.01)
        assert avg[2] == pytest.approx(3.19, abs=0.01)

    def test_deepseq_beats_probabilistic_per_design(self):
        for design, (prob, _, deepseq) in PAPER_TABLE5.items():
            assert deepseq < prob, design

    def test_mem_ctrl_is_the_exception(self):
        """The paper notes Grannite edges DeepSeq only on mem_ctrl."""
        for design, (_, grannite, deepseq) in PAPER_TABLE5.items():
            if design == "mem_ctrl":
                assert grannite < deepseq
            else:
                assert deepseq < grannite, design


class TestTable6Constants:
    def test_published_averages(self):
        n = len(PAPER_TABLE6)
        avg = [sum(v[i] for v in PAPER_TABLE6.values()) / n for i in range(3)]
        assert avg[0] == pytest.approx(15.51, abs=0.01)
        assert avg[1] == pytest.approx(7.42, abs=0.01)
        assert avg[2] == pytest.approx(2.57, abs=0.01)


class TestTable7Constants:
    def test_published_averages(self):
        n = len(PAPER_TABLE7)
        prob_avg = sum(v[2] for v in PAPER_TABLE7.values()) / n
        ds_avg = sum(v[3] for v in PAPER_TABLE7.values()) / n
        assert prob_avg == pytest.approx(2.66, abs=0.01)
        assert ds_avg == pytest.approx(0.31, abs=0.01)

    def test_reliabilities_in_band(self):
        for design, (gt, prob, _, _) in PAPER_TABLE7.items():
            assert 0.97 <= gt <= 1.0, design
            assert 0.94 <= prob <= 1.0, design

    def test_analytical_always_pessimistic(self):
        """In the paper's table the analytical method underestimates
        reliability on every design."""
        for design, (gt, prob, _, _) in PAPER_TABLE7.items():
            assert prob < gt, design
