"""Smoke tests for every table driver at micro scale.

The full quick-scale regenerations live in ``benchmarks/``; here each
driver runs with tiny parameters to verify wiring, table structure and the
invariants that do not require convergence.
"""

import pytest

from repro.experiments.config import get_scale
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import PAPER_TABLE2, run_table2
from repro.experiments.table3 import ABLATION_ROWS, run_table3
from repro.experiments.table4 import run_table4
from repro.experiments.table5 import run_table5
from repro.experiments.table6 import run_table6
from repro.experiments.table7 import run_table7

MICRO = get_scale(
    "quick",
    family_counts={"iscas89": 2, "itc99": 2, "opencores": 4},
    sim_cycles=30,
    hidden=8,
    iterations=2,
    epochs=2,
    lr=2e-3,
    design_scale=0.04,
    finetune_workloads=2,
    finetune_epochs=1,
    table6_workloads=2,
    reliability_circuits=2,
)


class TestTable1:
    def test_families_and_counts(self):
        r = run_table1(MICRO)
        assert set(r.stats) == {"iscas89", "itc99", "opencores"}
        assert r.stats["opencores"].num_circuits == 4
        assert "Table I" in r.text

    def test_size_ordering(self):
        r = run_table1(get_scale("quick", family_counts={
            "iscas89": 8, "itc99": 8, "opencores": 8}))
        assert (
            r.stats["itc99"].mean_nodes > r.stats["iscas89"].mean_nodes
        )


class TestTable2:
    def test_micro_run_structure(self):
        r = run_table2(MICRO, include=(("dag_convgnn", "conv_sum"),
                                       ("deepseq", "dual_attention")))
        assert len(r.metrics) == 2
        for ev in r.metrics.values():
            assert 0 <= ev.pe_tr <= 1
            assert 0 <= ev.pe_lg <= 1
        assert "Table II" in r.text

    def test_paper_reference_values_recorded(self):
        assert PAPER_TABLE2[("deepseq", "dual_attention")] == (0.028, 0.080)
        assert len(PAPER_TABLE2) == 5


class TestTable3:
    def test_rows(self):
        assert [r[:2] for r in ABLATION_ROWS] == [
            ("dag_recgnn", "attention"),
            ("deepseq", "attention"),
            ("deepseq", "dual_attention"),
        ]

    def test_micro_run(self):
        r = run_table3(MICRO)
        assert len(r.metrics) == 3
        assert "Table III" in r.text


class TestTable4:
    def test_sizes_close_to_paper(self):
        r = run_table4(MICRO)
        from repro.circuit.benchmarks import LARGE_DESIGN_SPECS

        for name, spec in LARGE_DESIGN_SPECS.items():
            got = r.summaries[name]["nodes"]
            assert abs(got - spec.paper_nodes) / spec.paper_nodes < 0.15, name

    def test_all_designs_have_state(self):
        r = run_table4(MICRO)
        for name, summary in r.summaries.items():
            assert summary["dffs"] > 0, name
            assert summary["pos"] > 0, name


class TestTable5:
    def test_micro_power_comparison(self):
        r = run_table5(MICRO, designs=("ptc",))
        cmp = r.comparisons["ptc"]
        assert cmp.gt_mw > 0
        for method in ("probabilistic", "grannite", "deepseq"):
            m = cmp.method(method)
            assert m.power_mw >= 0
            assert m.error_pct >= 0
        assert "Table V" in r.text


class TestTable6:
    def test_micro_workload_sweep(self):
        r = run_table6(MICRO, design="ptc")
        assert len(r.comparisons) == 2
        assert r.avg_error("probabilistic") >= 0
        assert "Table VI" in r.text


class TestTable7:
    def test_micro_reliability(self):
        r = run_table7(MICRO, designs=("ptc",))
        cmp = r.comparisons["ptc"]
        assert 0.5 < cmp.gt <= 1.0
        assert cmp.deepseq is not None
        assert "Table VII" in r.text
