"""Tests for the experiments CLI (python -m repro.experiments)."""

import subprocess
import sys

import pytest

from repro.experiments.__main__ import build_parser, main


class TestParser:
    def test_table_choices(self):
        parser = build_parser()
        args = parser.parse_args(["table4"])
        assert args.table == "table4"
        assert args.scale == "quick"

    def test_overrides_parsed(self):
        parser = build_parser()
        args = parser.parse_args(
            ["table1", "--epochs", "3", "--design-scale", "0.5"]
        )
        assert args.epochs == 3
        assert args.design_scale == 0.5

    def test_rejects_unknown_table(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["table9"])


class TestMain:
    def test_table1_inprocess(self, capsys):
        rc = main(
            [
                "table1",
                "--sim-cycles", "20",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "[table1:" in out

    def test_out_file(self, tmp_path, capsys):
        path = tmp_path / "t4.txt"
        rc = main(["table4", "--out", str(path)])
        assert rc == 0
        assert "Table IV" in path.read_text()

    def test_subprocess_entry(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro.experiments", "table1",
             "--sim-cycles", "20"],
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert result.returncode == 0, result.stderr
        assert "Table I" in result.stdout
