"""Smoke tests for the example scripts.

``quickstart`` runs end to end (it is small); the heavier examples are
compile-checked and their mains imported — the full runs live in the
benchmark suite's territory.
"""

import py_compile
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[1] / "examples"
ALL_EXAMPLES = sorted(EXAMPLES.glob("*.py"))


class TestExamples:
    def test_examples_present(self):
        names = {p.name for p in ALL_EXAMPLES}
        assert {
            "quickstart.py",
            "power_estimation.py",
            "reliability_analysis.py",
            "train_deepseq.py",
            "family_classification.py",
            "serve_deepseq.py",
        } <= names

    @pytest.mark.parametrize("path", ALL_EXAMPLES, ids=lambda p: p.name)
    def test_examples_compile(self, path):
        py_compile.compile(str(path), doraise=True)

    def test_quickstart_runs(self):
        result = subprocess.run(
            [sys.executable, str(EXAMPLES / "quickstart.py")],
            capture_output=True,
            text=True,
            timeout=600,
        )
        assert result.returncode == 0, result.stderr
        assert "avg prediction error" in result.stdout
        assert "circuit:" in result.stdout

    @pytest.mark.parametrize(
        "name",
        [
            "power_estimation",
            "reliability_analysis",
            "family_classification",
            "serve_deepseq",
        ],
    )
    def test_heavy_examples_importable(self, name):
        import importlib.util

        spec = importlib.util.spec_from_file_location(
            f"example_{name}", EXAMPLES / f"{name}.py"
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        assert callable(module.main)
