"""Edge-case circuits through the full model stack.

Degenerate inputs — no flip-flops, single gates, deep chains, pinned
workloads — must produce well-formed predictions, not crashes or NaNs.
"""

import numpy as np
import pytest

from repro.circuit.gates import GateType
from repro.circuit.graph import CircuitGraph
from repro.circuit.netlist import Netlist
from repro.models.base import ModelConfig
from repro.models.baselines import DagConvGnn, DagRecGnn
from repro.models.deepseq import DeepSeq
from repro.sim.workload import Workload

CFG = ModelConfig(hidden=8, iterations=2, seed=0)
ALL_MODELS = [DeepSeq, DagRecGnn, DagConvGnn]


def tiny_and() -> Netlist:
    nl = Netlist("tiny")
    a, b = nl.add_pi("a"), nl.add_pi("b")
    g = nl.add_gate(GateType.AND, [a, b], "g")
    nl.add_po(g)
    nl.validate()
    return nl


def combinational_chain(depth: int) -> Netlist:
    nl = Netlist("chain")
    cur = nl.add_pi("a")
    for k in range(depth):
        cur = nl.add_gate(GateType.NOT, [cur], f"n{k}")
    nl.add_po(cur)
    nl.validate()
    return nl


def ff_only() -> Netlist:
    nl = Netlist("ffonly")
    a = nl.add_pi("a")
    ff = nl.add_dff(a, "ff")
    nl.add_po(ff)
    nl.validate()
    return nl


class TestDegenerateCircuits:
    @pytest.mark.parametrize("model_cls", ALL_MODELS)
    def test_single_gate(self, model_cls):
        nl = tiny_and()
        model = model_cls(CFG)
        pred = model.predict(CircuitGraph(nl), Workload(np.array([0.3, 0.7])))
        assert pred.tr.shape == (3, 2)
        assert np.isfinite(pred.tr).all()

    @pytest.mark.parametrize("model_cls", ALL_MODELS)
    def test_no_dffs(self, model_cls):
        nl = combinational_chain(6)
        model = model_cls(CFG)
        pred = model.predict(CircuitGraph(nl), Workload(np.array([0.5])))
        assert np.isfinite(pred.lg).all()

    @pytest.mark.parametrize("model_cls", ALL_MODELS)
    def test_dff_passthrough_circuit(self, model_cls):
        nl = ff_only()
        model = model_cls(CFG)
        pred = model.predict(CircuitGraph(nl), Workload(np.array([0.9])))
        assert pred.tr.shape == (2, 2)

    def test_deep_chain_stable(self):
        nl = combinational_chain(200)
        model = DeepSeq(CFG)
        pred = model.predict(CircuitGraph(nl), Workload(np.array([0.5])))
        assert np.isfinite(pred.lg).all()
        assert (pred.lg >= 0).all() and (pred.lg <= 1).all()


class TestWorkloadExtremes:
    @pytest.mark.parametrize("p", [0.0, 1.0])
    def test_pinned_workloads(self, p):
        nl = tiny_and()
        model = DeepSeq(CFG)
        pred = model.predict(
            CircuitGraph(nl), Workload(np.array([p, p]))
        )
        assert np.isfinite(pred.tr).all()

    def test_different_extremes_differ(self):
        nl = tiny_and()
        model = DeepSeq(CFG)
        graph = CircuitGraph(nl)
        lo = model.predict(graph, Workload(np.array([0.0, 0.0])))
        hi = model.predict(graph, Workload(np.array([1.0, 1.0])))
        assert not np.allclose(lo.lg, hi.lg)


class TestTrainingEdges:
    def test_single_node_supervision(self):
        """Training on the tiniest circuit neither crashes nor NaNs."""
        from repro.nn.functional import l1_loss
        from repro.nn.optim import Adam

        nl = tiny_and()
        graph = CircuitGraph(nl)
        wl = Workload(np.array([0.5, 0.5]))
        model = DeepSeq(CFG)
        opt = Adam(model.parameters(), lr=1e-3)
        target_tr = np.full((3, 2), 0.25)
        target_lg = np.full((3, 1), 0.5)
        for _ in range(3):
            opt.zero_grad()
            pred_tr, pred_lg = model(graph, wl)
            (l1_loss(pred_tr, target_tr) + l1_loss(pred_lg, target_lg)).backward()
            opt.step()
        for _, p in model.named_parameters():
            assert np.isfinite(p.data).all()

    def test_iterations_zero_rejected_gracefully(self):
        """T=0 models skip propagation entirely but still regress."""
        nl = tiny_and()
        model = DeepSeq(ModelConfig(hidden=8, iterations=0, seed=0))
        pred = model.predict(CircuitGraph(nl), Workload(np.array([0.5, 0.5])))
        assert pred.tr.shape == (3, 2)
