"""Tests for the shared DAG-GNN machinery (repro.models.base)."""

import numpy as np
import pytest

from repro.models.base import ModelConfig, baseline_batches
from repro.models.deepseq import DeepSeq
from repro.models.baselines import DagRecGnn
from repro.sim.workload import random_workload

from tests.conftest import build_pair


CFG = ModelConfig(hidden=12, iterations=2, seed=0)


@pytest.fixture()
def setup():
    return build_pair(seed=3, n_pis=5, n_dffs=4, n_gates=30, workload_seed=1)


class TestInitialHidden:
    def test_pi_rows_broadcast_workload(self, setup):
        graph, wl = setup
        model = DeepSeq(CFG)
        h0 = model.initial_hidden(graph, wl)
        for k, pi in enumerate(graph.pi_ids):
            assert np.allclose(h0.numpy()[pi], wl.pi_probs[k])

    def test_workload_size_mismatch_rejected(self, setup):
        graph, _ = setup
        from repro.sim.workload import Workload

        model = DeepSeq(CFG)
        with pytest.raises(ValueError):
            model.initial_hidden(graph, Workload(np.array([0.5])))

    def test_non_pi_rows_random(self, setup):
        graph, wl = setup
        model = DeepSeq(CFG)
        h0 = model.initial_hidden(graph, wl).numpy()
        gate_rows = h0[graph.and_ids]
        assert gate_rows.std() > 0.01


class TestPropagation:
    def test_pi_rows_never_change(self, setup):
        graph, wl = setup
        model = DeepSeq(CFG)
        h = model.embed(graph, wl)
        for k, pi in enumerate(graph.pi_ids):
            assert np.allclose(h.numpy()[pi], wl.pi_probs[k]), (
                "PI embeddings must stay fixed at workload probabilities"
            )

    def test_dff_copy_step_applied(self, setup):
        """After DeepSeq's step 4 the DFF rows equal their data
        predecessors' rows."""
        graph, wl = setup
        model = DeepSeq(CFG)
        h = model.embed(graph, wl).numpy()
        for d, s in zip(graph.dff_ids, graph.dff_src):
            assert np.allclose(h[d], h[s])

    def test_baseline_keeps_dffs_distinct(self, setup):
        graph, wl = setup
        model = DagRecGnn(CFG)
        h = model.embed(graph, wl).numpy()
        diffs = [
            np.abs(h[d] - h[s]).max()
            for d, s in zip(graph.dff_ids, graph.dff_src)
        ]
        assert max(diffs) > 1e-6, "baseline has no clock-edge copy step"

    def test_inference_matches_training_forward(self, setup):
        """The in-place (no_grad) path must agree with the functional
        (autograd) path bit for bit."""
        graph, wl = setup
        model = DeepSeq(CFG)
        pred = model.predict(graph, wl)
        pred_tr, pred_lg = model(graph, wl)
        assert np.allclose(pred.tr, pred_tr.numpy(), atol=1e-12)
        assert np.allclose(pred.lg, pred_lg.numpy()[:, 0], atol=1e-12)

    def test_deterministic_predictions(self, setup):
        graph, wl = setup
        model = DeepSeq(CFG)
        a = model.predict(graph, wl)
        b = model.predict(graph, wl)
        assert (a.tr == b.tr).all()
        assert (a.lg == b.lg).all()

    def test_predictions_in_unit_interval(self, setup):
        graph, wl = setup
        model = DeepSeq(CFG)
        pred = model.predict(graph, wl)
        assert (pred.tr >= 0).all() and (pred.tr <= 1).all()
        assert (pred.lg >= 0).all() and (pred.lg <= 1).all()
        assert pred.toggle_rate.shape == (graph.num_nodes,)

    def test_workload_changes_predictions(self, setup):
        graph, wl = setup
        model = DeepSeq(CFG)
        a = model.predict(graph, wl)
        wl2 = random_workload(graph.netlist, seed=77)
        b = model.predict(graph, wl2)
        assert not np.allclose(a.lg, b.lg), (
            "workload conditioning must influence predictions"
        )


class TestBaselineBatches:
    def test_forward_includes_dff_updates(self, setup):
        graph, _ = setup
        fwd, _rev = baseline_batches(graph)
        covered = np.concatenate([b.nodes for b in fwd])
        for d in graph.dff_ids:
            assert d in covered

    def test_dff_batch_uses_data_edge(self, setup):
        graph, _ = setup
        fwd, _ = baseline_batches(graph)
        dff_batch = fwd[0]
        assert (dff_batch.nodes == graph.dff_ids).all()
        assert (dff_batch.src == graph.dff_src).all()

    def test_reverse_includes_dff_consumers(self, setup):
        graph, _ = setup
        _, rev = baseline_batches(graph)
        srcs = np.concatenate([b.src for b in rev if b.src.size])
        dffs = set(int(d) for d in graph.dff_ids)
        assert set(srcs.tolist()) & dffs, (
            "baseline reverse pass should hear from DFD consumers"
        )


class TestGradientFlow:
    def test_all_parameters_receive_gradient(self, setup):
        graph, wl = setup
        model = DeepSeq(CFG)
        pred_tr, pred_lg = model(graph, wl)
        (pred_tr.sum() + pred_lg.sum()).backward()
        missing = [
            name for name, p in model.named_parameters() if p.grad is None
        ]
        assert not missing, f"no gradient for {missing}"

    def test_gradients_finite(self, setup):
        graph, wl = setup
        model = DeepSeq(CFG)
        pred_tr, pred_lg = model(graph, wl)
        (pred_tr.sum() + pred_lg.sum()).backward()
        for name, p in model.named_parameters():
            assert np.isfinite(p.grad).all(), name
