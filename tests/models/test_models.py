"""Tests for the concrete models (deepseq, baselines, registry)."""

import numpy as np
import pytest

from repro.models.base import ModelConfig
from repro.models.baselines import DagConvGnn, DagRecGnn
from repro.models.deepseq import DeepSeq
from repro.models.registry import MODEL_NAMES, make_model
from repro.nn.functional import l1_loss
from repro.nn.optim import Adam

from tests.conftest import build_labels

CFG = ModelConfig(hidden=12, iterations=3, seed=0)


@pytest.fixture()
def problem():
    return build_labels(
        seed=11, n_pis=5, n_dffs=3, n_gates=25,
        workload_seed=2, cycles=100, sim_seed=2,
    )


class TestRegistry:
    def test_all_table_rows_instantiable(self):
        for name, agg in MODEL_NAMES:
            model = make_model(name, CFG, agg)
            assert model.config.aggregator == agg

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError):
            make_model("transformer", CFG)

    def test_classes(self):
        assert isinstance(make_model("deepseq", CFG), DeepSeq)
        assert isinstance(make_model("dag_convgnn", CFG), DagConvGnn)
        assert isinstance(make_model("dag_recgnn", CFG), DagRecGnn)


class TestArchitectureContracts:
    def test_convgnn_single_iteration(self):
        model = DagConvGnn(ModelConfig(hidden=8, iterations=7))
        assert model.config.iterations == 1, "ConvGNN is non-recursive"

    def test_recgnn_keeps_iterations(self):
        model = DagRecGnn(ModelConfig(hidden=8, iterations=7))
        assert model.config.iterations == 7

    def test_deepseq_uses_custom_batches(self):
        model = DeepSeq(CFG)
        assert model.use_custom_batches
        assert model.dff_copy_step

    def test_baselines_use_simple_propagation(self):
        for cls in (DagConvGnn, DagRecGnn):
            model = cls(CFG)
            assert not model.use_custom_batches
            assert not model.dff_copy_step

    def test_default_aggregators(self):
        assert DeepSeq().config.aggregator == "dual_attention"
        assert DagConvGnn().config.aggregator == "conv_sum"
        assert DagRecGnn().config.aggregator == "attention"

    def test_recursion_changes_output(self, problem):
        graph, wl, _ = problem
        shallow = DeepSeq(ModelConfig(hidden=12, iterations=1, seed=0))
        deep = DeepSeq(ModelConfig(hidden=12, iterations=6, seed=0))
        a = shallow.predict(graph, wl)
        b = deep.predict(graph, wl)
        assert not np.allclose(a.lg, b.lg)


class TestLearning:
    @pytest.mark.parametrize("name,agg", [("deepseq", "dual_attention"),
                                          ("dag_recgnn", "attention")])
    def test_overfits_single_circuit(self, problem, name, agg):
        graph, wl, labels = problem
        model = make_model(name, CFG, agg)
        opt = Adam(model.parameters(), lr=5e-3)
        first = last = None
        for step in range(30):
            opt.zero_grad()
            pred_tr, pred_lg = model(graph, wl)
            loss = l1_loss(pred_tr, labels.transition_prob) + l1_loss(
                pred_lg, labels.logic_prob[:, None]
            )
            loss.backward()
            opt.step()
            if first is None:
                first = loss.item()
            last = loss.item()
        assert last < first * 0.7, (name, first, last)

    def test_state_dict_roundtrip_preserves_predictions(self, problem):
        graph, wl, _ = problem
        a = DeepSeq(CFG)
        b = DeepSeq(ModelConfig(hidden=12, iterations=3, seed=42))
        b.load_state_dict(a.state_dict())
        assert np.allclose(
            a.predict(graph, wl).tr, b.predict(graph, wl).tr
        )
