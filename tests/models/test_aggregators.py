"""Tests for aggregation functions (repro.models.aggregators)."""

import numpy as np
import pytest

from repro.circuit.graph import EdgeBatch
from repro.models.aggregators import (
    AttentionAggregator,
    ConvSumAggregator,
    DualAttentionAggregator,
    make_aggregator,
)
from repro.nn.tensor import Tensor

HID = 8


@pytest.fixture()
def batch():
    # Two target nodes: node 10 with preds {0, 1}, node 11 with pred {2}.
    return EdgeBatch(
        nodes=np.array([10, 11]),
        src=np.array([0, 1, 2]),
        dst_local=np.array([0, 0, 1]),
    )


@pytest.fixture()
def states():
    rng = np.random.default_rng(0)
    h_cur = Tensor(rng.standard_normal((12, HID)))
    h_prev = Tensor(rng.standard_normal((12, HID)))
    return h_cur, h_prev


class TestFactory:
    @pytest.mark.parametrize(
        "kind,cls,mult",
        [
            ("conv_sum", ConvSumAggregator, 1),
            ("attention", AttentionAggregator, 1),
            ("dual_attention", DualAttentionAggregator, 2),
        ],
    )
    def test_make(self, kind, cls, mult):
        agg = make_aggregator(kind, HID)
        assert isinstance(agg, cls)
        assert agg.out_features == HID * mult

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            make_aggregator("mean_pool", HID)


class TestConvSum:
    def test_output_shape(self, batch, states):
        agg = ConvSumAggregator(HID)
        out = agg(*states, batch)
        assert out.shape == (2, HID)

    def test_is_sum_of_projections(self, batch, states):
        agg = ConvSumAggregator(HID, seed=3)
        h_cur, h_prev = states
        out = agg(h_cur, h_prev, batch).numpy()
        proj = h_cur.numpy() @ agg.proj.weight.data.T + agg.proj.bias.data
        assert np.allclose(out[0], proj[0] + proj[1])
        assert np.allclose(out[1], proj[2])

    def test_ignores_prev_state(self, batch, states):
        agg = ConvSumAggregator(HID, seed=3)
        h_cur, h_prev = states
        a = agg(h_cur, h_prev, batch).numpy()
        b = agg(h_cur, Tensor(np.zeros((12, HID))), batch).numpy()
        assert np.allclose(a, b)


class TestAttention:
    def test_output_shape(self, batch, states):
        agg = AttentionAggregator(HID)
        assert agg(*states, batch).shape == (2, HID)

    def test_single_pred_weight_is_identity(self, batch, states):
        """A node with one predecessor gets exactly that embedding
        (softmax over one element = 1)."""
        agg = AttentionAggregator(HID, seed=1)
        h_cur, h_prev = states
        out = agg(h_cur, h_prev, batch).numpy()
        assert np.allclose(out[1], h_cur.numpy()[2])

    def test_message_is_convex_combination(self, batch, states):
        agg = AttentionAggregator(HID, seed=2)
        h_cur, h_prev = states
        out = agg(h_cur, h_prev, batch).numpy()
        h0, h1 = h_cur.numpy()[0], h_cur.numpy()[1]
        # out[0] = a*h0 + (1-a)*h1 for some a in (0,1): solve per dim, all equal.
        denom = h0 - h1
        mask = np.abs(denom) > 1e-9
        alphas = (out[0] - h1)[mask] / denom[mask]
        assert np.allclose(alphas, alphas[0], atol=1e-9)
        assert 0.0 < alphas[0] < 1.0

    def test_depends_on_prev_state(self, batch, states):
        agg = AttentionAggregator(HID, seed=2)
        h_cur, h_prev = states
        a = agg(h_cur, h_prev, batch).numpy()
        b = agg(h_cur, Tensor(h_prev.numpy() + 1.0), batch).numpy()
        # dst score shifts cancel in softmax only if shift is uniform per
        # segment - a constant shift IS uniform, so craft a non-uniform one.
        shifted = h_prev.numpy().copy()
        shifted[10] += np.linspace(0, 3, HID)
        c = agg(h_cur, Tensor(shifted), batch).numpy()
        assert not np.allclose(a[0], c[0]) or np.allclose(a, b)


class TestDualAttention:
    def test_output_width_doubles(self, batch, states):
        agg = DualAttentionAggregator(HID)
        assert agg(*states, batch).shape == (2, 2 * HID)

    def test_concat_order_tr_then_lg(self, batch, states):
        """m = m_TR || m_LG with m_TR = gate * m_LG (Eqs. 6-7)."""
        agg = DualAttentionAggregator(HID, seed=4)
        out = agg(*states, batch).numpy()
        m_tr, m_lg = out[:, :HID], out[:, HID:]
        # gate in (0,1): each m_TR component has |m_TR| <= |m_LG| and the
        # ratio is constant across dimensions for a given node.
        for row in range(2):
            mask = np.abs(m_lg[row]) > 1e-9
            ratios = m_tr[row][mask] / m_lg[row][mask]
            assert np.allclose(ratios, ratios[0], atol=1e-9)
            assert 0.0 < ratios[0] < 1.0

    def test_gradients_reach_all_params(self, batch, states):
        agg = DualAttentionAggregator(HID, seed=5)
        out = agg(*states, batch).sum()
        out.backward()
        for name, p in agg.named_parameters():
            assert p.grad is not None, name

    def test_eq5_part_matches_simple_attention(self, batch, states):
        """The m_LG half equals the plain attention message when weights
        are copied."""
        dual = DualAttentionAggregator(HID, seed=6)
        single = AttentionAggregator(HID, seed=99)
        single.w1.weight.data[...] = dual.w1.weight.data
        single.w2.weight.data[...] = dual.w2.weight.data
        h_cur, h_prev = states
        m_lg = dual(h_cur, h_prev, batch).numpy()[:, HID:]
        m_single = single(h_cur, h_prev, batch).numpy()
        assert np.allclose(m_lg, m_single)
