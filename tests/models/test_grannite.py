"""Tests for the Grannite baseline (repro.models.grannite)."""

import numpy as np
import pytest

from repro.models.base import ModelConfig
from repro.models.grannite import Grannite, SourceActivity
from repro.nn.functional import l1_loss
from repro.nn.optim import Adam

from tests.conftest import build_labels

CFG = ModelConfig(hidden=12, aggregator="attention", seed=0)


@pytest.fixture()
def problem():
    graph, _, sim = build_labels(
        seed=19, n_pis=4, n_dffs=4, n_gates=25,
        workload_seed=3, cycles=80, sim_seed=3,
    )
    sources = SourceActivity.from_sim(graph, sim)
    return graph, sim, sources


class TestSourceActivity:
    def test_source_ids_are_pis_then_dffs(self, problem):
        graph, sim, sources = problem
        expected = np.concatenate([graph.pi_ids, graph.dff_ids])
        assert (sources.source_ids == expected).all()

    def test_values_match_simulation(self, problem):
        graph, sim, sources = problem
        assert (sources.logic_prob == sim.logic_prob[sources.source_ids]).all()
        assert (sources.tr01 == sim.tr01_prob[sources.source_ids]).all()

    def test_stacked_shape(self, problem):
        _, _, sources = problem
        assert sources.stacked().shape == (sources.source_ids.size, 3)


class TestGrannite:
    def test_node_features_include_tt_prob(self, problem):
        graph, _, _ = problem
        model = Grannite(CFG)
        feats = model.node_features(graph)
        assert feats.shape == (graph.num_nodes, 5)
        # AND gates carry output-1 probability 0.25; NOT gates 0.5.
        for a in graph.and_ids:
            assert feats[a, 4] == pytest.approx(0.25)
        for n in graph.not_ids:
            assert feats[n, 4] == pytest.approx(0.5)

    def test_forward_shape(self, problem):
        graph, _, sources = problem
        model = Grannite(CFG)
        out = model(graph, sources)
        assert out.shape == (graph.num_nodes, 2)

    def test_predict_full_overrides_sources(self, problem):
        """Per the Grannite flow, PI/FF activity comes from simulation, not
        the model (paper Section V-A2)."""
        graph, sim, sources = problem
        model = Grannite(CFG)
        pred = model.predict_full(graph, sources)
        assert np.allclose(pred.tr[sources.source_ids, 0], sources.tr01)
        assert np.allclose(pred.tr[sources.source_ids, 1], sources.tr10)
        assert np.allclose(pred.lg[sources.source_ids], sources.logic_prob)

    def test_learns_on_comb_targets(self, problem):
        graph, sim, sources = problem
        model = Grannite(CFG)
        comb = np.concatenate([graph.and_ids, graph.not_ids])
        target = sim.transition_prob[comb]
        opt = Adam(model.parameters(), lr=5e-3)
        losses = []
        for _ in range(25):
            opt.zero_grad()
            pred = model(graph, sources)
            loss = l1_loss(pred.gather_rows(comb), target)
            loss.backward()
            opt.step()
            losses.append(loss.item())
        assert losses[-1] < losses[0] * 0.8

    def test_deterministic(self, problem):
        graph, _, sources = problem
        model = Grannite(CFG)
        a = model.predict_full(graph, sources)
        b = model.predict_full(graph, sources)
        assert (a.tr == b.tr).all()
