"""Additional cell-library and analyzer edge cases."""

import numpy as np
import pytest

from repro.circuit.gates import GateType
from repro.circuit.library import library_circuit
from repro.sim.logicsim import SimConfig, simulate
from repro.sim.workload import Workload, random_workload
from repro.tasks.power.analysis import PowerAnalyzer
from repro.tasks.power.celllib import TSMC90_LIKE, CellLibrary, CellParams


class TestOperatingPoint:
    def test_power_scales_with_frequency(self):
        lib_1x = CellLibrary(
            "f1", {GateType.AND: CellParams(1.0, 0.0)}, clock_hz=100e6
        )
        lib_2x = CellLibrary(
            "f2", {GateType.AND: CellParams(1.0, 0.0)}, clock_hz=200e6
        )
        p1 = lib_1x.dynamic_power_w(GateType.AND, 0.3)
        p2 = lib_2x.dynamic_power_w(GateType.AND, 0.3)
        assert p2 == pytest.approx(2 * p1)

    def test_power_scales_with_vdd_squared(self):
        lo = CellLibrary("v1", {GateType.AND: CellParams(1.0, 0.0)}, vdd=1.0)
        hi = CellLibrary("v2", {GateType.AND: CellParams(1.0, 0.0)}, vdd=2.0)
        assert hi.dynamic_power_w(GateType.AND, 0.5) == pytest.approx(
            4 * lo.dynamic_power_w(GateType.AND, 0.5)
        )

    def test_zero_toggle_zero_dynamic(self):
        assert TSMC90_LIKE.dynamic_power_w(GateType.AND, 0.0) == 0.0

    def test_dff_costs_more_than_inverter(self):
        dff = TSMC90_LIKE.params(GateType.DFF).cap_ff
        inv = TSMC90_LIKE.params(GateType.NOT).cap_ff
        assert dff > inv


class TestAnalyzerMonotonicity:
    def test_power_monotone_in_activity(self):
        nl = library_circuit("s27")
        analyzer = PowerAnalyzer()
        totals = []
        for scale in (0.0, 0.1, 0.3):
            rates = np.full(len(nl), scale)
            totals.append(analyzer.analyze_probs(nl, rates, rates).total_w)
        assert totals[0] < totals[1] < totals[2]

    def test_simulated_power_reasonable_magnitude(self):
        """A ~17-node circuit at 100 MHz in a fF-class library burns
        nanowatts-to-microwatts, not watts."""
        nl = library_circuit("s27")
        res = simulate(nl, random_workload(nl, 1), SimConfig(cycles=60))
        report = PowerAnalyzer().analyze_probs(nl, res.tr01_prob, res.tr10_prob)
        assert 1e-9 < report.total_w < 1e-3

    def test_quiet_workload_cheaper(self):
        nl = library_circuit("s27")
        quiet = simulate(
            nl, Workload(np.full(4, 0.02)), SimConfig(cycles=60)
        )
        busy = simulate(
            nl, Workload(np.full(4, 0.5)), SimConfig(cycles=60)
        )
        analyzer = PowerAnalyzer()
        p_quiet = analyzer.analyze_probs(nl, quiet.tr01_prob, quiet.tr10_prob)
        p_busy = analyzer.analyze_probs(nl, busy.tr01_prob, busy.tr10_prob)
        assert p_busy.total_w > p_quiet.total_w
