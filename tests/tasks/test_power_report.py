"""Tests for hierarchical power reporting (repro.tasks.power.report)."""

import numpy as np
import pytest

from repro.circuit.gates import GateType
from repro.circuit.library import library_circuit
from repro.circuit.netlist import Netlist
from repro.sim.logicsim import SimConfig, simulate
from repro.sim.workload import random_workload
from repro.tasks.power.analysis import PowerAnalyzer
from repro.tasks.power.celllib import TSMC90_LIKE
from repro.tasks.power.report import (
    compare_reports,
    group_power,
    power_per_node,
    top_consumers,
)


@pytest.fixture(scope="module")
def measured():
    nl = library_circuit("s27")
    res = simulate(nl, random_workload(nl, 1), SimConfig(cycles=80, seed=0))
    return nl, res


class TestPerNode:
    def test_covers_all_nodes(self, measured):
        nl, res = measured
        rows = power_per_node(nl, res.tr01_prob, res.tr10_prob)
        assert len(rows) == len(nl)
        assert all(r.total_w >= 0 for r in rows)

    def test_sums_to_analyzer_total(self, measured):
        nl, res = measured
        rows = power_per_node(nl, res.tr01_prob, res.tr10_prob)
        report = PowerAnalyzer().analyze_probs(nl, res.tr01_prob, res.tr10_prob)
        assert sum(r.total_w for r in rows) == pytest.approx(report.total_w)

    def test_idle_gate_costs_only_leakage(self):
        nl = Netlist("idle")
        a = nl.add_pi("a")
        g = nl.add_gate(GateType.NOT, [a], "g")
        nl.add_po(g)
        zeros = np.zeros(2)
        rows = {r.name: r for r in power_per_node(nl, zeros, zeros)}
        assert rows["g"].total_w == pytest.approx(
            TSMC90_LIKE.leakage_power_w(GateType.NOT)
        )


class TestTopConsumers:
    def test_sorted_descending(self, measured):
        nl, res = measured
        top = top_consumers(nl, res.tr01_prob, res.tr10_prob, count=5)
        assert len(top) == 5
        powers = [t.total_w for t in top]
        assert powers == sorted(powers, reverse=True)

    def test_count_clamped(self, measured):
        nl, res = measured
        top = top_consumers(nl, res.tr01_prob, res.tr10_prob, count=10_000)
        assert len(top) == len(nl)


class TestGroupPower:
    def test_groups_partition_total(self, measured):
        nl, res = measured
        groups = group_power(nl, res.tr01_prob, res.tr10_prob)
        total = PowerAnalyzer().analyze_probs(
            nl, res.tr01_prob, res.tr10_prob
        ).total_w
        assert sum(groups.values()) == pytest.approx(total)

    def test_custom_grouper(self, measured):
        nl, res = measured
        groups = group_power(
            nl, res.tr01_prob, res.tr10_prob, grouper=lambda n: "all"
        )
        assert set(groups) == {"all"}

    def test_default_prefix_grouping(self, measured):
        nl, res = measured
        groups = group_power(nl, res.tr01_prob, res.tr10_prob)
        # s27 names are G0..G17 -> a single 'G' group.
        assert set(groups) == {"G"}


class TestCompareReports:
    def test_identical_reports_zero_error(self, measured):
        nl, res = measured
        report = PowerAnalyzer().analyze_probs(nl, res.tr01_prob, res.tr10_prob)
        deltas = compare_reports(report, report)
        for ref, est, err in deltas.values():
            assert ref == est
            assert err == pytest.approx(0.0)

    def test_scaled_estimate_signed_error(self, measured):
        nl, res = measured
        ref = PowerAnalyzer().analyze_probs(nl, res.tr01_prob, res.tr10_prob)
        est = PowerAnalyzer().analyze_probs(
            nl, 2 * res.tr01_prob, 2 * res.tr10_prob
        )
        deltas = compare_reports(ref, est)
        # Doubling toggle rates strictly increases dynamic power, so every
        # populated group shows positive signed error.
        assert any(err > 0 for _, _, err in deltas.values())
