"""Tests for the reliability task (repro.tasks.reliability)."""

import numpy as np
import pytest

from repro.circuit.benchmarks import family_subcircuits
from repro.circuit.gates import GateType
from repro.circuit.netlist import Netlist
from repro.sim.faults import FaultConfig
from repro.sim.logicsim import SimConfig
from repro.sim.workload import Workload, random_workload
from repro.tasks.reliability.analytical import (
    AnalyticalConfig,
    estimate_reliability,
    reliability_from_node_errors,
)
from repro.tasks.reliability.pipeline import run_reliability_pipeline


def inverter_chain(depth: int) -> Netlist:
    nl = Netlist(f"chain{depth}")
    cur = nl.add_pi("a")
    for k in range(depth):
        cur = nl.add_gate(GateType.NOT, [cur], f"n{k}")
    nl.add_po(cur)
    nl.validate()
    return nl


class TestReliabilityFromNodeErrors:
    def test_perfect_nodes_give_one(self):
        nl = inverter_chain(3)
        n = len(nl)
        rel = reliability_from_node_errors(
            nl, np.zeros(n), np.zeros(n), np.full(n, 0.5)
        )
        assert rel == 1.0

    def test_po_error_reduces_reliability(self):
        nl = inverter_chain(1)
        n = len(nl)
        err = np.zeros(n)
        err[nl.pos[0]] = 0.1
        rel = reliability_from_node_errors(nl, err, err, np.full(n, 0.5))
        assert rel == pytest.approx(0.9)

    def test_multiple_pos_multiply(self):
        nl = Netlist("two_pos")
        a = nl.add_pi("a")
        g1 = nl.add_gate(GateType.NOT, [a], "g1")
        g2 = nl.add_gate(GateType.NOT, [g1], "g2")
        nl.add_po(g1)
        nl.add_po(g2)
        err = np.array([0.0, 0.1, 0.2])
        rel = reliability_from_node_errors(nl, err, err, np.full(3, 0.5))
        assert rel == pytest.approx(0.9 * 0.8)


class TestAnalytical:
    def test_inverter_chain_error_composition(self):
        """Through a chain of k inverters the error probability composes as
        1-(1-eps)^k (conditional errors swap at each stage)."""
        depth = 5
        nl = inverter_chain(depth)
        eps = 1e-3
        est = estimate_reliability(
            nl, Workload(np.array([0.5]), seed=0),
            AnalyticalConfig(eps=eps, window=1),
        )
        po = nl.pos[0]
        expected = 1.0 - (1.0 - eps) ** depth
        assert est.err01[po] == pytest.approx(expected, rel=1e-6)
        assert est.err10[po] == pytest.approx(expected, rel=1e-6)

    def test_masking_at_and_gate(self):
        """An AND with one input parked at 0 masks errors on the other."""
        nl = Netlist("mask")
        a, b = nl.add_pi("a"), nl.add_pi("b")
        n1 = nl.add_gate(GateType.NOT, [a], "n1")  # carries error eps
        g = nl.add_gate(GateType.AND, [n1, b], "g")
        nl.add_po(g)
        eps = 1e-3
        # b ~ 0: output is almost always 0 and errors on n1 rarely matter.
        low = estimate_reliability(
            nl, Workload(np.array([0.5, 0.01])), AnalyticalConfig(eps=eps, window=1)
        )
        high = estimate_reliability(
            nl, Workload(np.array([0.5, 0.99])), AnalyticalConfig(eps=eps, window=1)
        )
        g_id = nl.node_by_name("g")
        assert low.err01[g_id] < high.err01[g_id]

    def test_window_monotone_pessimism(self):
        nl = family_subcircuits("iscas89", 1, seed=30)[0]
        wl = random_workload(nl, 2)
        rels = [
            estimate_reliability(nl, wl, AnalyticalConfig(eps=5e-6, window=w)).reliability
            for w in (1, 8, 32)
        ]
        assert rels[0] >= rels[1] >= rels[2]

    def test_error_probs_bounded(self):
        nl = family_subcircuits("opencores", 1, seed=31)[0]
        est = estimate_reliability(nl, random_workload(nl, 3))
        assert (est.err01 >= 0).all() and (est.err01 <= 1).all()
        assert (est.err10 >= 0).all() and (est.err10 <= 1).all()
        assert 0.0 <= est.reliability <= 1.0

    def test_error_prob_property(self):
        nl = inverter_chain(2)
        est = estimate_reliability(nl, Workload(np.array([0.5])))
        assert est.error_prob.shape == (len(nl), 2)


class TestPipeline:
    @pytest.fixture(scope="class")
    def comparison(self):
        nl = family_subcircuits("opencores", 1, seed=33)[0]
        wl = random_workload(nl, 5)
        return run_reliability_pipeline(
            nl,
            wl,
            sim_config=SimConfig(cycles=150, seed=5),
            fault_config=FaultConfig(seed=6),
        )

    def test_gt_reliability_high(self, comparison):
        assert 0.9 < comparison.gt <= 1.0

    def test_analytical_close_to_gt(self, comparison):
        assert comparison.analytical_error_pct < 25.0

    def test_no_deepseq_without_model(self, comparison):
        assert comparison.deepseq is None

    def test_row_renders(self, comparison):
        assert "opencores" in comparison.row()
