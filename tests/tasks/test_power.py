"""Tests for the power-estimation task (repro.tasks.power)."""

import numpy as np
import pytest

from repro.circuit.benchmarks import family_subcircuits
from repro.circuit.gates import GateType
from repro.circuit.netlist import Netlist
from repro.sim.logicsim import SimConfig, simulate
from repro.sim.saif import activity_from_probs
from repro.sim.workload import Workload, random_workload
from repro.tasks.power.analysis import PowerAnalyzer
from repro.tasks.power.celllib import TSMC90_LIKE, CellLibrary, CellParams
from repro.tasks.power.pipeline import run_power_pipeline
from repro.tasks.power.probabilistic import (
    ProbabilisticConfig,
    estimate_probabilities,
)


def tree_circuit() -> Netlist:
    """A fanout-free (tree) combinational circuit: independence is exact."""
    nl = Netlist("tree")
    a, b, c, d = (nl.add_pi(x) for x in "abcd")
    g1 = nl.add_gate(GateType.AND, [a, b], "g1")
    g2 = nl.add_gate(GateType.AND, [c, d], "g2")
    n1 = nl.add_gate(GateType.NOT, [g1], "n1")
    g3 = nl.add_gate(GateType.AND, [n1, g2], "g3")
    nl.add_po(g3)
    nl.validate()
    return nl


def reconvergent_circuit() -> Netlist:
    """x AND (NOT x): always 0, but independence predicts p=p(1-p)>0."""
    nl = Netlist("reconv")
    a, b = nl.add_pi("a"), nl.add_pi("b")
    g = nl.add_gate(GateType.AND, [a, b], "g")
    ng = nl.add_gate(GateType.NOT, [g], "ng")
    bad = nl.add_gate(GateType.AND, [g, ng], "bad")
    nl.add_po(bad)
    nl.validate()
    return nl


class TestCellLibrary:
    def test_default_covers_all_gate_types(self):
        for t in GateType:
            TSMC90_LIKE.params(t)

    def test_dynamic_power_formula(self):
        # P = 1/2 C V^2 f r
        lib = CellLibrary(
            "unit",
            {GateType.AND: CellParams(cap_ff=2.0, leakage_nw=0.0)},
            vdd=1.0,
            clock_hz=1e9,
        )
        p = lib.dynamic_power_w(GateType.AND, 0.5)
        assert p == pytest.approx(0.5 * 2e-15 * 1.0 * 1e9 * 0.5)

    def test_missing_cell_rejected(self):
        lib = CellLibrary("empty", {})
        with pytest.raises(KeyError):
            lib.params(GateType.AND)


class TestPowerAnalyzer:
    def test_hand_computed_power(self):
        nl = Netlist("two_gates")
        a = nl.add_pi("a")
        g = nl.add_gate(GateType.NOT, [a], "g")
        nl.add_po(g)
        analyzer = PowerAnalyzer()
        lp = np.array([0.5, 0.5])
        tr = np.array([0.25, 0.25])
        report = analyzer.analyze_probs(nl, tr, tr)
        lib = TSMC90_LIKE
        expected = (
            lib.dynamic_power_w(GateType.PI, 0.5)
            + lib.dynamic_power_w(GateType.NOT, 0.5)
            + lib.leakage_power_w(GateType.PI)
            + lib.leakage_power_w(GateType.NOT)
        )
        assert report.total_w == pytest.approx(expected)

    def test_saif_and_probs_paths_agree(self):
        nl = tree_circuit()
        wl = random_workload(nl, 1)
        res = simulate(nl, wl, SimConfig(cycles=100, seed=1))
        analyzer = PowerAnalyzer()
        direct = analyzer.analyze_probs(nl, res.tr01_prob, res.tr10_prob)
        doc = activity_from_probs(
            nl, res.logic_prob, res.tr01_prob, res.tr10_prob, duration=100_000
        )
        via_saif = analyzer.analyze(nl, doc)
        assert via_saif.total_mw == pytest.approx(direct.total_mw, rel=1e-3)

    def test_missing_signals_rejected(self):
        nl = tree_circuit()
        doc = activity_from_probs(
            nl, *(np.zeros(len(nl)),) * 3, duration=10
        )
        doc.signals = doc.signals[:-1]
        with pytest.raises(ValueError, match="missing activity"):
            PowerAnalyzer().analyze(nl, doc)

    def test_report_breakdown_sums(self):
        nl = tree_circuit()
        report = PowerAnalyzer().analyze_probs(
            nl, np.full(len(nl), 0.1), np.full(len(nl), 0.1)
        )
        assert sum(report.by_type_w.values()) == pytest.approx(report.total_w)
        assert report.total_mw == pytest.approx(report.total_w * 1e3)


class TestProbabilistic:
    def test_exact_on_tree_circuits(self):
        """Without reconvergence or FFs, independence is exact: the
        probabilistic estimate matches simulation to sampling error."""
        nl = tree_circuit()
        wl = Workload(np.array([0.3, 0.6, 0.5, 0.8]), seed=2)
        est = estimate_probabilities(nl, wl)
        sim = simulate(nl, wl, SimConfig(cycles=400, streams=64, seed=2))
        assert np.abs(est.logic_prob - sim.logic_prob).max() < 0.02
        assert np.abs(est.tr01 - sim.tr01_prob).max() < 0.02

    def test_wrong_at_reconvergence(self):
        """The documented failure mode: correlated signals break it."""
        nl = reconvergent_circuit()
        wl = Workload(np.array([0.5, 0.5]), seed=3)
        est = estimate_probabilities(nl, wl)
        bad = nl.node_by_name("bad")
        sim = simulate(nl, wl, SimConfig(cycles=200, seed=3))
        assert sim.logic_prob[bad] == 0.0
        assert est.logic_prob[bad] > 0.05, (
            "independence assumption should overestimate here"
        )

    def test_ff_fixed_point_converges(self):
        circuits = family_subcircuits("iscas89", 2, seed=9)
        for nl in circuits:
            est = estimate_probabilities(nl, random_workload(nl, 1))
            assert est.converged
            assert (est.logic_prob >= 0).all() and (est.logic_prob <= 1).all()

    def test_workload_mismatch_rejected(self):
        nl = tree_circuit()
        with pytest.raises(ValueError):
            estimate_probabilities(nl, Workload(np.array([0.5])))

    def test_temporal_independence_identity(self):
        nl = tree_circuit()
        wl = Workload(np.array([0.2, 0.4, 0.6, 0.8]), seed=1)
        est = estimate_probabilities(nl, wl)
        assert np.allclose(est.tr01, est.logic_prob * (1 - est.logic_prob))
        assert np.allclose(est.tr01, est.tr10)
        assert np.allclose(est.toggle_rate, 2 * est.tr01)


class TestPipeline:
    def test_gt_vs_probabilistic_only(self):
        nl = family_subcircuits("opencores", 1, seed=12)[0]
        wl = random_workload(nl, 4)
        cmp = run_power_pipeline(nl, wl, sim_config=SimConfig(cycles=80, seed=4))
        assert cmp.gt_mw > 0
        prob = cmp.method("probabilistic")
        assert prob.error_pct >= 0
        with pytest.raises(KeyError):
            cmp.method("deepseq")

    def test_row_renders(self):
        nl = family_subcircuits("opencores", 1, seed=12)[0]
        wl = random_workload(nl, 4)
        cmp = run_power_pipeline(nl, wl, sim_config=SimConfig(cycles=40, seed=4))
        assert nl.name in cmp.row()

    def test_gt_result_reuse(self):
        nl = family_subcircuits("opencores", 1, seed=12)[0]
        wl = random_workload(nl, 4)
        sim_cfg = SimConfig(cycles=60, seed=4)
        gt = simulate(nl, wl, sim_cfg)
        a = run_power_pipeline(nl, wl, sim_config=sim_cfg)
        b = run_power_pipeline(nl, wl, sim_config=sim_cfg, gt_result=gt)
        assert a.gt_mw == pytest.approx(b.gt_mw)
