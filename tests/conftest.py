"""Shared test fixtures: session-scoped circuit/workload/label factories.

Building a random sequential netlist, AIG-converting it, compiling the
``CircuitGraph`` and simulating ground-truth labels is the setup cost of
most model/runtime/serve tests — and the same handful of (seed, size)
combinations used to be rebuilt per test file.  The factories here memoize
those builds for the whole session.  Everything returned is treated as
immutable by convention: tests must not mutate a factory-built netlist,
graph or workload (build one inline if you need to).

The ``slow`` marker (registered in pyproject.toml) tags the heavy fuzz /
stress tier: tier-1 CI runs ``-m "not slow"``; the nightly job runs all.
"""

from functools import lru_cache

import numpy as np
import pytest

from repro.circuit import GeneratorConfig, random_sequential_netlist, to_aig
from repro.circuit.gates import GateType
from repro.circuit.graph import CircuitGraph
from repro.circuit.netlist import Netlist
from repro.sim.workload import random_workload


@lru_cache(maxsize=None)
def build_graph(
    seed: int = 0,
    n_pis: int = 5,
    n_dffs: int = 3,
    n_gates: int = 40,
    aig: bool = True,
) -> CircuitGraph:
    """Memoized compiled graph of a random sequential netlist."""
    nl = random_sequential_netlist(
        GeneratorConfig(n_pis=n_pis, n_dffs=n_dffs, n_gates=n_gates), seed=seed
    )
    if aig:
        nl = to_aig(nl).aig
    return CircuitGraph(nl)


@lru_cache(maxsize=None)
def build_pair(
    seed: int = 0,
    n_pis: int = 5,
    n_dffs: int = 3,
    n_gates: int = 40,
    aig: bool = True,
    workload_seed: int | None = None,
):
    """Memoized (graph, workload); workload seed defaults to 1000 + seed."""
    graph = build_graph(seed, n_pis, n_dffs, n_gates, aig)
    wl_seed = 1000 + seed if workload_seed is None else workload_seed
    return graph, random_workload(graph.netlist, seed=wl_seed)


@lru_cache(maxsize=None)
def build_labels(
    seed: int = 0,
    n_pis: int = 5,
    n_dffs: int = 3,
    n_gates: int = 40,
    aig: bool = True,
    workload_seed: int | None = None,
    cycles: int = 100,
    sim_seed: int = 2,
):
    """Memoized (graph, workload, SimResult) ground-truth triple."""
    from repro.sim.logicsim import SimConfig, simulate

    graph, wl = build_pair(seed, n_pis, n_dffs, n_gates, aig, workload_seed)
    labels = simulate(graph.netlist, wl, SimConfig(cycles=cycles, seed=sim_seed))
    return graph, wl, labels


@lru_cache(maxsize=None)
def shallow_pair(seed: int = 99):
    """A depth-1 circuit: packed with deep members, the union levels
    beyond its depth contain none of its nodes (empty member levels)."""
    nl = Netlist(name="shallow")
    a = nl.add_pi("a")
    b = nl.add_pi("b")
    g = nl.add_gate(GateType.AND, [a, b], "g")
    nl.add_po(g)
    nl.validate()
    return CircuitGraph(nl), random_workload(nl, seed=seed)


@lru_cache(maxsize=None)
def dff_chain_pair(seed: int = 98):
    """A DFF-heavy loop: PI -> AND -> DFF -> DFF -> NOT feeding back."""
    nl = Netlist(name="chain")
    a = nl.add_pi("a")
    ff1 = nl.add_dff(None, "ff1")
    ff2 = nl.add_dff(ff1, "ff2")
    inv = nl.add_gate(GateType.NOT, [ff2], "inv")
    g = nl.add_gate(GateType.AND, [a, inv], "g")
    nl.set_fanins(ff1, [g])
    nl.add_po(g)
    nl.validate()
    return CircuitGraph(nl), random_workload(nl, seed=seed)


@lru_cache(maxsize=None)
def single_node_pair(seed: int = 11):
    """A lone PI: empty schedules, heads applied straight to h0."""
    nl = Netlist("one")
    nl.add_pi("a")
    nl.validate()
    return CircuitGraph(nl), random_workload(nl, seed=seed)


def mixed_fleet():
    """Mismatched depths and DFF counts, including the corner cases."""
    pairs = [
        build_pair(seed=0, n_dffs=4, n_gates=60),
        shallow_pair(),
        build_pair(seed=1, n_dffs=0, n_gates=45),
        dff_chain_pair(),
        build_pair(seed=2, n_dffs=7, n_gates=25),
    ]
    return [g for g, _ in pairs], [w for _, w in pairs]


@lru_cache(maxsize=None)
def build_subcircuits(family: str, count: int, seed: int):
    """Memoized benchmark-family sub-circuit extraction."""
    from repro.circuit.benchmarks import family_subcircuits

    return family_subcircuits(family, count, seed=seed)


@lru_cache(maxsize=None)
def build_dataset_cached(family: str, count: int, seed: int, cycles: int, sim_seed: int):
    """Memoized quick-scale training dataset over family sub-circuits."""
    from repro.sim.logicsim import SimConfig
    from repro.train.dataset import build_dataset

    circuits = build_subcircuits(family, count, seed)
    return build_dataset(
        circuits, SimConfig(cycles=cycles, streams=64, seed=sim_seed), seed=0
    )


@lru_cache(maxsize=None)
def build_sample(seed: int, n_gates: int = 25, n_pis: int = 4, n_dffs: int = 2):
    """Memoized CircuitSample with synthetic (uniform-random) targets."""
    from repro.train.dataset import CircuitSample

    graph = build_graph(seed, n_pis, n_dffs, n_gates)
    rng = np.random.default_rng(seed)
    return CircuitSample(
        graph=graph,
        workload=random_workload(graph.netlist, seed=seed),
        target_tr=rng.uniform(size=(graph.num_nodes, 2)),
        target_lg=rng.uniform(size=graph.num_nodes),
        name=f"s{seed}",
    )


# ----------------------------------------------------------------------
# fixture handles — tests take the factory and call it with their params
# ----------------------------------------------------------------------

@pytest.fixture(scope="session")
def circuit_factory():
    """``(seed, n_pis, n_dffs, n_gates, aig) -> CircuitGraph`` (memoized)."""
    return build_graph


@pytest.fixture(scope="session")
def pair_factory():
    """``(...) -> (CircuitGraph, Workload)`` (memoized)."""
    return build_pair


@pytest.fixture(scope="session")
def labels_factory():
    """``(...) -> (CircuitGraph, Workload, SimResult)`` (memoized)."""
    return build_labels


@pytest.fixture(scope="session")
def sample_factory():
    """``(seed, n_gates, ...) -> CircuitSample`` (memoized)."""
    return build_sample


@pytest.fixture(scope="session")
def dataset_factory():
    """``(family, count, seed, cycles, sim_seed) -> dataset`` (memoized)."""
    return build_dataset_cached


@pytest.fixture(scope="session")
def fleet():
    """The mixed-shape five-circuit fleet used by packing/serving tests."""
    return mixed_fleet()
