"""Reliability analysis with fault injection (paper Section V-B).

Fine-tunes DeepSeq to predict per-node soft-error probabilities from
Monte-Carlo fault simulation, then compares circuit-level reliability
estimates — ground truth vs the analytical baseline vs DeepSeq — on a
large test design.

Run:  python examples/reliability_analysis.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.circuit import family_subcircuits, large_design
from repro.models import ModelConfig, make_model
from repro.sim import FaultConfig, SimConfig, random_workload, testbench_workload
from repro.sim.faults import simulate_with_faults
from repro.tasks.reliability import run_reliability_pipeline
from repro.train import (
    FinetuneConfig,
    Trainer,
    TrainConfig,
    build_dataset,
    finetune_for_reliability,
)


def main() -> None:
    sim = SimConfig(cycles=150, streams=64, seed=1)
    faults = FaultConfig(fault_rate=5e-4, episode_cycles=100, seed=2)

    # Show the fault model on one small circuit first.
    small = family_subcircuits("iscas89", 1, seed=5)[0]
    wl = random_workload(small, 3)
    fr = simulate_with_faults(small, wl, sim, faults)
    print(
        f"{small.name}: reliability {fr.reliability:.4f}, "
        f"mean err01 {fr.err01.mean():.2e}, mean err10 {fr.err10.mean():.2e}"
    )

    # Pre-train on the standard objective, fine-tune on error probabilities.
    config = ModelConfig(hidden=32, iterations=4, seed=0)
    model = make_model("deepseq", config, "dual_attention")
    circuits = family_subcircuits("opencores", 8, seed=3)
    Trainer(TrainConfig(epochs=8, lr=5e-3, batch_size=4)).train(
        model, build_dataset(circuits, sim, seed=4)
    )
    ft_config = FinetuneConfig(epochs=6, lr=2e-3, sim=sim, seed=6)
    finetune_for_reliability(model, circuits, ft_config, fault_config=faults)

    # Evaluate on a (scaled) large design.
    design = large_design("rtcclock", scale=0.125)
    design.name = "rtcclock"
    workload = testbench_workload(design, seed=9, name="test")
    cmp = run_reliability_pipeline(
        design,
        workload,
        deepseq=model,
        sim_config=sim,
        fault_config=faults,
        error_scale=ft_config.target_scale,
    )
    print(f"\n{design.name} (scaled):")
    print(f"  ground truth  {cmp.gt:.4f}")
    print(f"  analytical    {cmp.analytical:.4f}  ({cmp.analytical_error_pct:.2f}% err)")
    print(f"  deepseq       {cmp.deepseq:.4f}  ({cmp.deepseq_error_pct:.2f}% err)")


if __name__ == "__main__":
    main()
