"""Quickstart: simulate a sequential circuit and train DeepSeq on it.

Walks the full DeepSeq data path on one small circuit:

1. generate a sequential netlist and lower it to AIG form;
2. draw a random workload and simulate it to get per-node logic and
   transition probabilities (the training labels);
3. train a small DeepSeq model on those labels;
4. compare predictions against the simulator's ground truth.

Run:  python examples/quickstart.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

import numpy as np

from repro.circuit import CircuitGraph, GeneratorConfig, random_sequential_netlist, to_aig
from repro.models import DeepSeq, ModelConfig
from repro.runtime import predict_one
from repro.sim import SimConfig, random_workload, simulate
from repro.train import CircuitSample, TrainConfig, Trainer, evaluate


def main() -> None:
    # 1. A random sequential circuit: 8 PIs, 10 DFFs, ~80 gates.
    nl = random_sequential_netlist(
        GeneratorConfig(n_pis=8, n_dffs=10, n_gates=80), seed=42
    )
    aig = to_aig(nl).aig
    graph = CircuitGraph(aig)
    print(f"circuit: {graph}")

    # 2. Workload + simulation -> labels.
    workload = random_workload(aig, seed=7)
    labels = simulate(aig, workload, SimConfig(cycles=156, streams=64, seed=1))
    print(
        f"simulated {labels.cycles} cycles x {labels.streams} streams; "
        f"mean logic prob {labels.logic_prob.mean():.3f}, "
        f"mean toggle rate {labels.toggle_rate.mean():.3f}"
    )

    # 3. Train a small DeepSeq (hidden 32, T=4 keeps this CPU-friendly).
    model = DeepSeq(ModelConfig(hidden=32, iterations=4, seed=0))
    sample = CircuitSample(
        graph=graph,
        workload=workload,
        target_tr=labels.transition_prob,
        target_lg=labels.logic_prob,
        name=aig.name,
    )
    trainer = Trainer(TrainConfig(epochs=30, lr=5e-3, batch_size=1, verbose=False))
    history = trainer.train(model, [sample])
    print(f"training loss: {history[0].loss:.4f} -> {history[-1].loss:.4f}")

    # 4. Evaluate (paper Eq. 9: average prediction error).
    metrics = evaluate(model, [sample])
    print(f"avg prediction error: TTR {metrics.pe_tr:.4f}, TLG {metrics.pe_lg:.4f}")

    # Inference goes through the batched runtime: the compiled plan is
    # cached process-wide, and float32 is the low-latency serving path.
    pred = predict_one(model, graph, workload)
    worst = int(np.argmax(np.abs(pred.lg - labels.logic_prob)))
    print(
        f"worst logic-prob node: {aig.node_name(worst)} "
        f"pred {pred.lg[worst]:.3f} vs sim {labels.logic_prob[worst]:.3f}"
    )
    fast = predict_one(model, graph, workload, dtype="float32")
    print(
        f"float32 fast path matches to "
        f"{np.abs(fast.lg - pred.lg).max():.2e} max-abs"
    )


if __name__ == "__main__":
    main()
