"""Power estimation on a large design (the paper's Fig. 3 pipeline).

Builds the ``ptc`` (PWM/timer/counter) test design, fine-tunes a DeepSeq
model on it with a handful of workloads, and compares four power
estimates — ground-truth simulation, the probabilistic (non-simulative)
baseline, Grannite and DeepSeq — through real SAIF files and the power
analyzer with the 90 nm-like cell library.

Run:  python examples/power_estimation.py          (1/16-scale design, fast)
      python examples/power_estimation.py --full   (paper-size design, hours)
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.circuit import large_design
from repro.experiments import get_scale
from repro.experiments.common import (
    model_config,
    pretrain,
    sim_config,
    training_dataset,
)
from repro.models import Grannite
from repro.sim import testbench_workload
from repro.tasks.power import run_power_pipeline
from repro.train import FinetuneConfig, finetune_grannite, finetune_on_workloads


def main(full_scale: bool = False) -> None:
    scale = get_scale("paper" if full_scale else "quick")
    design = large_design("ptc", seed=scale.seed + 7, scale=scale.design_scale)
    design.name = "ptc"
    print(f"design: {design}")

    sim = sim_config(scale)

    # Pre-train on the Table I stand-in corpus (the calibrated quick-scale
    # recipe shared with the Table V regenerator).
    deepseq = pretrain("deepseq", "dual_attention", scale, training_dataset(scale))

    # Fine-tune on the design (paper: 1,000 workloads; quick: 8).
    ft = FinetuneConfig(
        num_workloads=scale.finetune_workloads,
        epochs=scale.finetune_epochs,
        lr=scale.finetune_lr,
        sim=sim,
        seed=scale.seed + 3,
        workload_activity=scale.workload_activity,
    )
    finetune_on_workloads(deepseq, design, ft)
    grannite = Grannite(model_config(scale, "attention"))
    finetune_grannite(grannite, design, ft)

    # Evaluate on an unseen workload of the same activity class.
    workload = testbench_workload(
        design,
        seed=scale.seed + 911,
        name="test",
        active_fraction=scale.workload_activity,
    )
    cmp = run_power_pipeline(
        design, workload, deepseq=deepseq, grannite=grannite, sim_config=sim
    )
    print(f"\nGT power: {cmp.gt_mw:.3f} mW")
    for m in cmp.methods:
        print(f"  {m.method:<14} {m.power_mw:8.3f} mW   error {m.error_pct:6.2f}%")


if __name__ == "__main__":
    main(full_scale="--full" in sys.argv)
