"""Pre-train DeepSeq on the multi-family corpus and compare all models.

A miniature of the paper's Table II pipeline: build the three-family
training corpus, simulate labels, train every (model, aggregator) row, and
print the comparison.  Use ``--epochs N`` / ``--circuits N`` to scale up.

Run:  python examples/train_deepseq.py [--epochs 10] [--circuits 24]
"""

import argparse
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.experiments import get_scale, run_table2


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--epochs", type=int, default=10)
    parser.add_argument("--circuits", type=int, default=24)
    parser.add_argument("--hidden", type=int, default=32)
    parser.add_argument("--iterations", type=int, default=4)
    args = parser.parse_args()

    per_family = max(1, args.circuits // 4)
    scale = get_scale(
        "quick",
        epochs=args.epochs,
        hidden=args.hidden,
        iterations=args.iterations,
        family_counts={
            "iscas89": per_family,
            "itc99": per_family,
            "opencores": 2 * per_family,
        },
    )
    t0 = time.time()
    result = run_table2(scale)
    print(result.text)
    print(f"\ntotal {time.time() - t0:.0f}s")


if __name__ == "__main__":
    main()
