"""Pre-train DeepSeq on the packed training runtime.

A miniature of the paper's pre-training pipeline on the new training
runtime: build the three-family corpus, simulate labels, and train DeepSeq
with packed super-graph minibatches, cosine learning-rate decay, gradient
accumulation and a resumable checkpoint.  Interrupt it (Ctrl-C) and run it
again with the same arguments — it continues from the last completed epoch
and lands on the same parameters as an uninterrupted run.

Label generation runs through the data factory: ``--workers N`` fans the
simulations over N processes and ``--data-cache DIR`` persists labels in a
content-addressed cache, so re-running this script (or any other driver
labelling the same circuits) skips simulation entirely.

Run:  python examples/train_deepseq.py [--epochs 10] [--circuits 24]
      [--schedule cosine] [--grad-accum 2] [--checkpoint deepseq.npz]
      [--workers 4] [--data-cache .repro-cache]
      [--train-workers 4]   (data-parallel training; bitwise-identical)
      [--table2]   (the original all-models Table II comparison)
"""

import argparse
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--epochs", type=int, default=10)
    parser.add_argument("--circuits", type=int, default=24)
    parser.add_argument("--hidden", type=int, default=32)
    parser.add_argument("--iterations", type=int, default=4)
    parser.add_argument("--batch-size", type=int, default=4)
    parser.add_argument(
        "--schedule", choices=["constant", "cosine", "step"], default="cosine"
    )
    parser.add_argument("--grad-accum", type=int, default=1)
    parser.add_argument(
        "--checkpoint", default=None,
        help="resumable checkpoint path (.npz); reruns continue from it",
    )
    parser.add_argument(
        "--workers", type=int, default=None,
        help="data-factory processes for label simulation (default: auto)",
    )
    parser.add_argument(
        "--train-workers", type=int, default=0,
        help="data-parallel training processes (0 = in-process); the "
        "trained parameters are bitwise identical at any value",
    )
    parser.add_argument(
        "--data-cache", default=None,
        help="on-disk label-cache dir; reruns skip identical simulations",
    )
    parser.add_argument(
        "--table2", action="store_true",
        help="run the full Table II model comparison instead",
    )
    args = parser.parse_args()

    from repro.experiments import get_scale, run_table2

    per_family = max(1, args.circuits // 4)
    scale = get_scale(
        "quick",
        epochs=args.epochs,
        hidden=args.hidden,
        iterations=args.iterations,
        batch_size=args.batch_size,
        schedule=args.schedule,
        grad_accum=args.grad_accum,
        train_workers=args.train_workers,
        data_workers=args.workers,
        data_cache_dir=args.data_cache,
        family_counts={
            "iscas89": per_family,
            "itc99": per_family,
            "opencores": 2 * per_family,
        },
    )
    t0 = time.time()
    if args.table2:
        result = run_table2(scale)
        print(result.text)
    else:
        from repro.experiments.common import (
            data_factory,
            model_config,
            training_dataset,
        )
        from repro.models.deepseq import DeepSeq
        from repro.train.trainer import TrainConfig, Trainer, evaluate

        factory = data_factory(scale)
        dataset = training_dataset(scale, factory=factory)
        st = factory.stats
        print(
            f"labels: {st.misses} simulated, {st.hits} from cache "
            f"({st.disk_hits} disk)"
        )
        val_count = max(1, len(dataset) // 5)
        train_split, val_split = dataset[val_count:], dataset[:val_count]
        model = DeepSeq(model_config(scale))
        trainer = Trainer(
            TrainConfig(
                epochs=scale.epochs,
                lr=scale.lr,
                batch_size=scale.batch_size,
                seed=scale.seed,
                verbose=True,
                schedule=scale.schedule,
                grad_accum=scale.grad_accum,
                train_workers=scale.train_workers,
                checkpoint_path=args.checkpoint,
                resume=args.checkpoint is not None,
            )
        )
        trainer.train(model, train_split, val_dataset=val_split)
        ev = evaluate(model, val_split)
        print(
            f"\nheld-out: PE_TR {ev.pe_tr:.3f}  PE_LG {ev.pe_lg:.3f} "
            f"({ev.num_circuits} circuits, {ev.num_nodes} nodes)"
        )
    print(f"total {time.time() - t0:.0f}s")


if __name__ == "__main__":
    main()
