"""Extension: serving-style batched inference with the runtime layer.

Demonstrates the three pieces of :mod:`repro.runtime`:

1. **Compiled plans** — each circuit structure is levelized once and the
   plan is cached process-wide under its content hash;
2. **Multi-circuit packing** — a :class:`BatchedPredictor` packs K queued
   circuits into one disjoint super-graph, so a single levelized sweep
   serves the whole batch;
3. **The float32 fast path** — inference runs on a cached float32 shadow
   of the weights while the float64 master copies stay untouched for
   training.

Run:  python examples/batched_inference.py
"""

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

import numpy as np

from repro.circuit import GeneratorConfig, random_sequential_netlist, to_aig
from repro.models import DeepSeq, ModelConfig
from repro.runtime import BatchedPredictor, plan_for
from repro.sim import random_workload


def main() -> None:
    model = DeepSeq(ModelConfig(hidden=32, iterations=4, seed=0))

    # A stream of inference requests: 24 circuits with mixed shapes.
    graphs, workloads = [], []
    for k in range(24):
        nl = to_aig(
            random_sequential_netlist(
                GeneratorConfig(n_pis=6 + k % 4, n_dffs=4 + k % 3, n_gates=120),
                seed=k,
            )
        ).aig
        graphs.append(plan_for(nl).graph)
        workloads.append(random_workload(nl, seed=100 + k))

    # Sequential float64 baseline.
    t0 = time.perf_counter()
    baseline = [model.predict(g, w) for g, w in zip(graphs, workloads)]
    t_seq = time.perf_counter() - t0

    # Batched float32 fast path: submit/flush like a serving loop.
    predictor = BatchedPredictor(model, batch_size=8, dtype="float32")
    t0 = time.perf_counter()
    handles = [predictor.submit(g, w) for g, w in zip(graphs, workloads)]
    predictor.flush()
    batched = [h.result() for h in handles]
    t_batch = time.perf_counter() - t0

    worst = max(
        np.abs(b.tr - s.tr).max() for b, s in zip(batched, baseline)
    )
    print(f"sequential float64: {len(graphs) / t_seq:8.2f} circuits/sec")
    print(f"batched   float32: {len(graphs) / t_batch:8.2f} circuits/sec")
    print(f"max |fp32 - fp64| over all nodes: {worst:.2e}")
    print(
        f"processed {predictor.circuits_processed} circuits in "
        f"{predictor.batches_flushed} packed sweeps"
    )


if __name__ == "__main__":
    main()
