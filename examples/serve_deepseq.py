"""Extension: multi-worker serving with deadline-based micro-batching.

Spins up a :class:`repro.serve.Server` — K worker threads, each holding a
serialized-equal replica of one DeepSeq model — and drives it with a
handful of concurrent closed-loop clients, the shape of traffic a
multi-user deployment sees.  The server packs whatever requests are
pending when a flush fires (queue reached ``batch_size``, or the oldest
request is ``max_latency_ms`` old) into one super-graph sweep.

Shows: the latency/throughput trade-off of ``max_latency_ms``, the
metrics surface, and the float64 equivalence guarantee (every served
result is bitwise-identical to a sequential ``model.predict``).

Run:  python examples/serve_deepseq.py
"""

import sys
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

import numpy as np

from repro.circuit import GeneratorConfig, random_sequential_netlist, to_aig
from repro.models import DeepSeq, ModelConfig
from repro.runtime import plan_for
from repro.serve import Server
from repro.sim import random_workload

N_CLIENTS = 4
REQUESTS_PER_CLIENT = 24


def build_problems(n: int = 16):
    problems = []
    for k in range(n):
        nl = to_aig(
            random_sequential_netlist(
                GeneratorConfig(n_pis=6 + k % 4, n_dffs=3 + k % 3, n_gates=90),
                seed=k,
            )
        ).aig
        problems.append((plan_for(nl).graph, random_workload(nl, seed=100 + k)))
    return problems


def main() -> None:
    model = DeepSeq(ModelConfig(hidden=32, iterations=4, seed=0))
    problems = build_problems()
    baseline = [model.predict(g, w) for g, w in problems]

    for max_latency_ms in (5.0, 50.0):
        with Server(
            model,
            workers=2,
            batch_size=8,
            max_latency_ms=max_latency_ms,
            dtype="float64",
        ) as server:
            mismatches = [0]

            def client(cid: int) -> None:
                for i in range(REQUESTS_PER_CLIENT):
                    idx = (cid * 5 + i) % len(problems)
                    result = server.predict(*problems[idx])
                    if not np.array_equal(result.tr, baseline[idx].tr):
                        mismatches[0] += 1

            t0 = time.perf_counter()
            threads = [
                threading.Thread(target=client, args=(c,))
                for c in range(N_CLIENTS)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            elapsed = time.perf_counter() - t0

            total = N_CLIENTS * REQUESTS_PER_CLIENT
            print(f"\n=== max_latency_ms={max_latency_ms:.0f} ===")
            print(
                f"{total} requests from {N_CLIENTS} clients in {elapsed:.2f}s "
                f"({total / elapsed:.1f} circuits/sec)"
            )
            print(server.metrics.format())
            print(
                "float64 equivalence: "
                + ("BITWISE OK" if mismatches[0] == 0 else f"{mismatches[0]} MISMATCHES")
            )


if __name__ == "__main__":
    main()
