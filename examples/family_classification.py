"""Extension: netlist family classification from DeepSeq graph embeddings.

The paper's Section II-B cites FGNN's netlist-classification use case;
this example shows DeepSeq's learned representations carry the same kind
of graph-level signal.  A DeepSeq model is pre-trained on the standard
multi-task objective, then *frozen*; a nearest-centroid classifier over
mean-pooled node embeddings (Eq. 2 readout) separates ISCAS'89-style,
ITC'99-style and OpenCores-style circuits.

Run:  python examples/family_classification.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

import numpy as np

from repro.circuit import family_subcircuits
from repro.models import DeepSeq, ModelConfig
from repro.runtime import plan_for
from repro.sim import SimConfig, random_workload
from repro.train import Trainer, TrainConfig, build_dataset

FAMILIES = ("iscas89", "itc99", "opencores")


def embed_circuits(model, circuits, seed=0):
    out = []
    for k, nl in enumerate(circuits):
        # Compiled graphs come from the shared runtime plan cache, so
        # re-embedding a circuit (train + eval splits) compiles it once.
        graph = plan_for(nl).graph
        wl = random_workload(nl, seed=seed + k)
        out.append(model.readout(graph, wl, mode="meanmax"))
    return np.stack(out)


def main() -> None:
    sim = SimConfig(cycles=80, streams=64, seed=1)
    model = DeepSeq(ModelConfig(hidden=32, iterations=4, seed=0))

    # Pre-train briefly on a mixed corpus (standard DeepSeq objective).
    pretrain = [
        nl for fam in FAMILIES for nl in family_subcircuits(fam, 4, seed=10)
    ]
    Trainer(TrainConfig(epochs=6, lr=5e-3, batch_size=4)).train(
        model, build_dataset(pretrain, sim, seed=2)
    )

    # Frozen embeddings for train/test circuits of each family.
    train_x, train_y, test_x, test_y = [], [], [], []
    for label, fam in enumerate(FAMILIES):
        circuits = family_subcircuits(fam, 10, seed=77)
        emb = embed_circuits(model, circuits, seed=3)
        train_x.append(emb[:6])
        train_y += [label] * 6
        test_x.append(emb[6:])
        test_y += [label] * 4
    train_x = np.concatenate(train_x)
    test_x = np.concatenate(test_x)
    train_y = np.array(train_y)
    test_y = np.array(test_y)

    # Nearest-centroid classifier in embedding space.
    centroids = np.stack(
        [train_x[train_y == c].mean(axis=0) for c in range(len(FAMILIES))]
    )
    dists = np.linalg.norm(test_x[:, None, :] - centroids[None], axis=2)
    pred = dists.argmin(axis=1)
    accuracy = (pred == test_y).mean()
    print(f"family classification accuracy: {accuracy:.2%} "
          f"(chance = {1 / len(FAMILIES):.2%})")
    for c, fam in enumerate(FAMILIES):
        mask = test_y == c
        print(f"  {fam:<10} {(pred[mask] == c).mean():.2%}")


if __name__ == "__main__":
    main()
