"""Inspect a circuit: structure, waveforms, coverage, per-node activity.

A tour of the analysis tooling on the classic ISCAS'89 s27 benchmark:

1. structural profile (reconvergence, sequential loops, depth);
2. a Graphviz DOT rendering of the learning graph (levelized view);
3. a VCD waveform dump of a short run (open with GTKWave);
4. toggle coverage of a random workload;
5. the top power consumers under that workload.

Artifacts are written next to this script as ``s27.dot`` / ``s27.vcd``.

Run:  python examples/inspect_circuit.py [circuit-name]
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.circuit import library_circuit, library_names, structural_profile
from repro.circuit.visualize import levels_to_dot
from repro.sim import SimConfig, random_workload, simulate, trace_simulation
from repro.sim.coverage import toggle_coverage
from repro.tasks.power.report import top_consumers


def main(name: str = "s27") -> None:
    nl = library_circuit(name)
    print(f"{name}: {nl}")

    profile = structural_profile(nl)
    print(f"structure: {profile.row()}")

    out_dir = Path(__file__).resolve().parent
    dot_path = out_dir / f"{name}.dot"
    dot_path.write_text(levels_to_dot(nl))
    print(f"wrote {dot_path} (render with: dot -Tsvg {dot_path.name})")

    workload = random_workload(nl, seed=1)
    tracer = trace_simulation(nl, workload, cycles=40, seed=1)
    vcd_path = out_dir / f"{name}.vcd"
    tracer.dump(vcd_path)
    print(f"wrote {vcd_path} ({tracer.cycles} cycles; open with GTKWave)")

    result = simulate(nl, workload, SimConfig(cycles=200, seed=1))
    coverage = toggle_coverage(result)
    print(f"coverage: {coverage.row()}")

    print("top power consumers:")
    for row in top_consumers(nl, result.tr01_prob, result.tr10_prob, count=5):
        print(f"  {row.name:<8} {row.gate_type:<5} {row.total_w * 1e9:8.2f} nW")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "s27")
